"""Wall-time, cache-traffic and per-stage timing accounting for runs.

A :class:`MetricsRecorder` is threaded through cell execution; each cell
contributes one :class:`CellMetrics` (which of its stages ran vs. hit the
cache, and how long each took).  Pool workers run in other processes, so
they return their ``CellMetrics`` alongside the result and the parent
merges them — the recorder itself never crosses a process boundary.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.obs.metrics import Histogram
from repro.runner.cache import CacheStats
from repro.runner.summary import format_table

__all__ = ["CellMetrics", "MetricsRecorder", "format_table"]

#: latency percentiles reported in tables and JSON payloads
LATENCY_QUANTILES = (0.5, 0.95, 0.99)


@dataclass
class CellMetrics:
    """Timings for one (benchmark, pipeline, capacity) cell."""

    name: str
    pipeline: str
    capacity: int | None
    #: stage name -> seconds; stages: "compile", "retarget", "simulate"
    stages: dict[str, float] = field(default_factory=dict)
    base_cache_hit: bool = False
    run_cache_hit: bool = False
    attempts: int = 1
    #: parent-process re-executions after a worker timeout/death; a cell
    #: that needed one is a service-level flakiness signal even though
    #: its summary came back fine
    retries: int = 0
    worker: str = "serial"
    #: folded :class:`repro.obs.MetricsRegistry` snapshot (tracing only)
    obs: dict | None = None
    #: the cell's trace payload (tracing only; never serialized whole)
    trace: dict | None = None

    @property
    def seconds(self) -> float:
        return sum(self.stages.values())

    def as_dict(self) -> dict:
        payload = {
            "name": self.name,
            "pipeline": self.pipeline,
            "capacity": self.capacity,
            "stages": {k: round(v, 6) for k, v in self.stages.items()},
            "seconds": round(self.seconds, 6),
            "base_cache_hit": self.base_cache_hit,
            "run_cache_hit": self.run_cache_hit,
            "attempts": self.attempts,
            "retries": self.retries,
            "worker": self.worker,
        }
        if self.obs is not None:
            payload["obs"] = self.obs
        if self.trace is not None:
            payload["traced"] = True
            payload["trace_replayed"] = bool(self.trace.get("replayed"))
        return payload


class MetricsRecorder:
    """Collects cell metrics plus whole-run wall time and cache traffic."""

    def __init__(self) -> None:
        self.cells: list[CellMetrics] = []
        self.cache = CacheStats()
        self._t0 = time.perf_counter()
        self.wall_time_s = 0.0
        self.workers = 1
        #: per-stage wall-time distribution over cells that did work
        #: (cache-served cells contribute nothing); stages: "compile"
        #: (base compiles only) and "run" (retarget + simulate)
        self.latency = Histogram(
            "runner_cell_latency_s",
            "per-cell stage wall time distribution (seconds)")

    def add_cell(self, cell: CellMetrics) -> None:
        self.cells.append(cell)
        if "compile" in cell.stages:
            self.latency.observe(cell.stages["compile"], stage="compile")
        if "retarget" in cell.stages or "simulate" in cell.stages:
            self.latency.observe(
                cell.stages.get("retarget", 0.0)
                + cell.stages.get("simulate", 0.0), stage="run")

    def latency_quantiles(self) -> dict[str, dict[str, float]]:
        """{"compile"/"run": {"count", "p50", "p95", "p99"}} for every
        stage with at least one observation."""
        out: dict[str, dict[str, float]] = {}
        for stage in ("compile", "run"):
            count = self.latency.count(stage=stage)
            if not count:
                continue
            entry = {"count": count}
            for q in LATENCY_QUANTILES:
                entry[f"p{int(q * 100)}"] = round(
                    self.latency.quantile(q, stage=stage), 6)
            out[stage] = entry
        return out

    def merge_cache_stats(self, stats: CacheStats) -> None:
        self.cache.hits += stats.hits
        self.cache.misses += stats.misses
        self.cache.stores += stats.stores
        self.cache.evictions += stats.evictions

    def finish(self) -> None:
        self.wall_time_s = time.perf_counter() - self._t0

    # -- reporting ---------------------------------------------------------

    @property
    def run_cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.run_cache_hit)

    def as_dict(self) -> dict:
        return {
            "wall_time_s": round(self.wall_time_s, 6),
            "workers": self.workers,
            "cells": [c.as_dict() for c in self.cells],
            "cache": self.cache.as_dict(),
            "cell_count": len(self.cells),
            "run_cache_hits": self.run_cache_hits,
            "compute_seconds": round(sum(c.seconds for c in self.cells), 6),
            "latency": self.latency_quantiles(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_table(self) -> str:
        rows: list = [
            [
                f"{c.name}/{c.pipeline}",
                c.capacity if c.capacity is not None else "-",
                c.stages.get("compile", 0.0),
                c.stages.get("retarget", 0.0) + c.stages.get("simulate", 0.0),
                "hit" if c.run_cache_hit else
                ("base-hit" if c.base_cache_hit else "miss"),
                c.retries,
                c.worker,
            ]
            for c in self.cells
        ]
        if self.cells:
            rows.append("-")
            rows.append([
                f"total ({len(self.cells)} cells)",
                "",
                sum(c.stages.get("compile", 0.0) for c in self.cells),
                sum(c.stages.get("retarget", 0.0)
                    + c.stages.get("simulate", 0.0) for c in self.cells),
                f"{self.run_cache_hits} hit",
                sum(c.retries for c in self.cells),
                "",
            ])
        table = format_table(
            ["cell", "cap", "compile s", "run s", "cache", "retries",
             "worker"], rows,
            "per-cell runner metrics",
            align=["l", "r", "r", "r", "l", "r", "l"],
        )
        summary = (
            f"{len(self.cells)} cells in {self.wall_time_s:.2f}s wall "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}); "
            f"cache: {self.cache.hits} hits / {self.cache.misses} misses / "
            f"{self.cache.evictions} evicted"
        )
        quantiles = self.latency_quantiles()
        if quantiles:
            parts = []
            for stage, entry in quantiles.items():
                parts.append(
                    f"{stage} p50={entry['p50']:.3f} "
                    f"p95={entry['p95']:.3f} p99={entry['p99']:.3f}")
            summary += "\nstage latency s: " + "  |  ".join(parts)
        return table + "\n\n" + summary
