"""Wall-time, cache-traffic and per-stage timing accounting for runs.

A :class:`MetricsRecorder` is threaded through cell execution; each cell
contributes one :class:`CellMetrics` (which of its stages ran vs. hit the
cache, and how long each took).  Pool workers run in other processes, so
they return their ``CellMetrics`` alongside the result and the parent
merges them — the recorder itself never crosses a process boundary.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

from repro.runner.cache import CacheStats
from repro.runner.summary import format_table

__all__ = ["CellMetrics", "MetricsRecorder", "format_table"]


@dataclass
class CellMetrics:
    """Timings for one (benchmark, pipeline, capacity) cell."""

    name: str
    pipeline: str
    capacity: int | None
    #: stage name -> seconds; stages: "compile", "retarget", "simulate"
    stages: dict[str, float] = field(default_factory=dict)
    base_cache_hit: bool = False
    run_cache_hit: bool = False
    attempts: int = 1
    worker: str = "serial"
    #: folded :class:`repro.obs.MetricsRegistry` snapshot (tracing only)
    obs: dict | None = None
    #: the cell's trace payload (tracing only; never serialized whole)
    trace: dict | None = None

    @property
    def seconds(self) -> float:
        return sum(self.stages.values())

    def as_dict(self) -> dict:
        payload = {
            "name": self.name,
            "pipeline": self.pipeline,
            "capacity": self.capacity,
            "stages": {k: round(v, 6) for k, v in self.stages.items()},
            "seconds": round(self.seconds, 6),
            "base_cache_hit": self.base_cache_hit,
            "run_cache_hit": self.run_cache_hit,
            "attempts": self.attempts,
            "worker": self.worker,
        }
        if self.obs is not None:
            payload["obs"] = self.obs
        if self.trace is not None:
            payload["traced"] = True
            payload["trace_replayed"] = bool(self.trace.get("replayed"))
        return payload


class MetricsRecorder:
    """Collects cell metrics plus whole-run wall time and cache traffic."""

    def __init__(self) -> None:
        self.cells: list[CellMetrics] = []
        self.cache = CacheStats()
        self._t0 = time.perf_counter()
        self.wall_time_s = 0.0
        self.workers = 1

    def add_cell(self, cell: CellMetrics) -> None:
        self.cells.append(cell)

    def merge_cache_stats(self, stats: CacheStats) -> None:
        self.cache.hits += stats.hits
        self.cache.misses += stats.misses
        self.cache.stores += stats.stores
        self.cache.evictions += stats.evictions

    def finish(self) -> None:
        self.wall_time_s = time.perf_counter() - self._t0

    # -- reporting ---------------------------------------------------------

    @property
    def run_cache_hits(self) -> int:
        return sum(1 for c in self.cells if c.run_cache_hit)

    def as_dict(self) -> dict:
        return {
            "wall_time_s": round(self.wall_time_s, 6),
            "workers": self.workers,
            "cells": [c.as_dict() for c in self.cells],
            "cache": self.cache.as_dict(),
            "cell_count": len(self.cells),
            "run_cache_hits": self.run_cache_hits,
            "compute_seconds": round(sum(c.seconds for c in self.cells), 6),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def to_table(self) -> str:
        rows: list = [
            [
                f"{c.name}/{c.pipeline}",
                c.capacity if c.capacity is not None else "-",
                c.stages.get("compile", 0.0),
                c.stages.get("retarget", 0.0) + c.stages.get("simulate", 0.0),
                "hit" if c.run_cache_hit else
                ("base-hit" if c.base_cache_hit else "miss"),
                c.worker,
            ]
            for c in self.cells
        ]
        if self.cells:
            rows.append("-")
            rows.append([
                f"total ({len(self.cells)} cells)",
                "",
                sum(c.stages.get("compile", 0.0) for c in self.cells),
                sum(c.stages.get("retarget", 0.0)
                    + c.stages.get("simulate", 0.0) for c in self.cells),
                f"{self.run_cache_hits} hit",
                "",
            ])
        table = format_table(
            ["cell", "cap", "compile s", "run s", "cache", "worker"], rows,
            "per-cell runner metrics",
            align=["l", "r", "r", "r", "l", "l"],
        )
        summary = (
            f"{len(self.cells)} cells in {self.wall_time_s:.2f}s wall "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}); "
            f"cache: {self.cache.hits} hits / {self.cache.misses} misses / "
            f"{self.cache.evictions} evicted"
        )
        return table + "\n\n" + summary
