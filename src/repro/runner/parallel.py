"""Cell execution and process-pool fan-out over experiment grids.

One *cell* is a ``(benchmark, pipeline, capacity)`` triple.  Executing it
means: obtain the capacity-independent compiled base (disk cache or
compile), retarget it at the capacity (:func:`repro.pipeline.with_buffer`),
simulate, check the checksum against the pure-Python oracle and summarize.

:func:`run_grid` maps a list of cells over a
:class:`~concurrent.futures.ProcessPoolExecutor` in two phases — first the
distinct compiled bases (one task per (benchmark, pipeline) group, so a
capacity sweep never compiles the same program twice), then the per-cell
retarget+simulate tasks.  Results always come back in input-cell order,
whatever the completion order; a cell that times out or fails with
anything other than a checksum mismatch is retried once in the parent
process before the failure is allowed to propagate.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from functools import partial
from typing import Iterable, Sequence

from repro.bench import benchmark
from repro.obs import MetricsRegistry, Tracer, use as obs_use
from repro.pipeline import (
    Compiled,
    checked_enabled,
    compile_aggressive,
    compile_traditional,
    run_compiled,
    with_buffer,
)
from repro.loopbuffer.overlay import retarget_choice
from repro.runner.cache import ArtifactCache, cache_key, default_cache
from repro.runner.metrics import CellMetrics, MetricsRecorder
from repro.runner.summary import RunSummary
from repro.sim.engine import engine_choice

ENV_WORKERS = "REPRO_WORKERS"

PIPELINES = ("traditional", "aggressive")

_COMPILERS = {
    "traditional": compile_traditional,
    "aggressive": compile_aggressive,
}


@dataclass(frozen=True, order=True)
class Cell:
    """One grid point: a benchmark compiled one way, run at one capacity."""

    name: str
    pipeline: str
    capacity: int | None

    @property
    def group(self) -> tuple[str, str]:
        """The (benchmark, pipeline) pair sharing one compiled base."""
        return (self.name, self.pipeline)


def expand_grid(
    names: Iterable[str],
    pipelines: Iterable[str] = PIPELINES,
    capacities: Iterable[int | None] = (256,),
) -> list[Cell]:
    """Cartesian (pipeline × benchmark × capacity) grid, pipeline-major to
    match the historical serial sweep order."""
    return [
        Cell(name, pipeline, capacity)
        for pipeline in pipelines
        for name in names
        for capacity in capacities
    ]


def resolve_workers(workers: int | None = None) -> int:
    """``workers`` argument, else ``REPRO_WORKERS``, else the core count."""
    if workers is None:
        env = os.environ.get(ENV_WORKERS)
        if env:
            try:
                workers = int(env)
            except ValueError:
                workers = None
    if workers is None:
        workers = os.cpu_count() or 1
    return max(0, workers)


# --------------------------------------------------------------------------
# cache keys


def _machine_fingerprint(machine) -> str:
    slots = ";".join(
        ",".join(sorted(unit.name for unit in units))
        for units in machine.slot_units
    )
    return (f"slots[{slots}] bp={machine.branch_penalty} "
            f"ir={machine.int_registers} pr={machine.predicate_registers} "
            f"ob={machine.operation_bits}")


def _base_flags(bench, checked: bool = False, engine: str = "fast") -> dict:
    from repro.sched.machine import DEFAULT_MACHINE

    # ``checked`` is part of the key: a checked compile carries different
    # stats (and may raise), so it must never be served from — or poison —
    # the unchecked cache entry.  ``engine`` is part of the key too: the
    # engines are verified equivalent, but a differential sweep (bench_sim,
    # the fuzz oracle) must never have one engine's artifacts satisfy the
    # other's cells.
    return {
        "entry": bench.entry,
        "args": list(bench.args),
        "machine": _machine_fingerprint(DEFAULT_MACHINE),
        "buffer_capacity": None,
        "checked": checked,
        "engine": engine,
    }


def base_key(name: str, pipeline: str, checked: bool | None = None,
             engine: str | None = None) -> str:
    bench = benchmark(name)
    return cache_key(bench.source, pipeline,
                     _base_flags(bench, checked_enabled(checked),
                                 engine_choice(engine)))


def run_key(name: str, pipeline: str, capacity: int | None,
            checked: bool | None = None, engine: str | None = None,
            retarget: str | None = None) -> str:
    # ``retarget`` is part of the key for the same reason ``engine`` is:
    # overlay and legacy summaries are verified byte-identical, but a
    # differential sweep must never have one mode's artifacts satisfy the
    # other's cells.
    bench = benchmark(name)
    flags = _base_flags(bench, checked_enabled(checked),
                        engine_choice(engine))
    flags["capacity"] = capacity
    flags["retarget"] = retarget_choice(retarget)
    return cache_key(bench.source, pipeline, flags)


# --------------------------------------------------------------------------
# single-cell execution (runs in the parent or in a pool worker)


def compile_base(name: str, pipeline: str,
                 cache: ArtifactCache | None = None,
                 checked: bool | None = None,
                 engine: str | None = None) -> Compiled:
    """Compiled-but-unassigned base for a (benchmark, pipeline) group."""
    compiled, _seconds, _hit, _trace = _compile_base_timed(
        name, pipeline, cache, checked_enabled(checked),
        engine=engine_choice(engine))
    return compiled


def _compile_base_timed(
    name: str, pipeline: str, cache: ArtifactCache | None,
    checked: bool = False, trace: bool = False, engine: str = "fast",
) -> tuple[Compiled, float, bool, dict | None]:
    """Returns ``(compiled, seconds, cache_hit, trace_payload)``.

    With ``trace`` on, a cache hit replays the trace stored beside the
    base artifact; a hit with no stored trace recompiles (deterministic,
    so the base is unchanged) to record one.
    """
    if pipeline not in _COMPILERS:
        raise ValueError(f"unknown pipeline {pipeline!r}")
    key = base_key(name, pipeline, checked, engine)
    if cache is not None:
        cached = cache.load(key, "base")
        if cached is not None:
            if not trace:
                return cached, 0.0, True, None
            payload = cache.load(key, "trace")
            if payload is not None:
                return cached, 0.0, True, payload
    bench = benchmark(name)
    tracer = Tracer() if trace else None
    t0 = time.perf_counter()
    with obs_use(tracer) if trace else nullcontext():
        compiled = _COMPILERS[pipeline](bench.build(), entry=bench.entry,
                                        args=bench.args, buffer_capacity=None,
                                        checked=checked, engine=engine)
    seconds = time.perf_counter() - t0
    payload = tracer.to_payload() if trace else None
    if cache is not None:
        cache.store(key, "base", compiled)
        if trace:
            cache.store(key, "trace", payload)
    return compiled, seconds, False, payload


def _execute_cell(
    cell: Cell,
    cache: ArtifactCache | None,
    base: Compiled | None = None,
    checked: bool = False,
    trace: bool = False,
    engine: str = "fast",
    retarget: str = "overlay",
) -> tuple[RunSummary, CellMetrics, Compiled | None]:
    """Run one cell end to end; raises AssertionError on checksum mismatch.

    Returns the compiled base actually used (``None`` on a run-cache hit)
    so callers sweeping several capacities can reuse it.  With ``trace``
    on, the cell's trace payload rides on ``CellMetrics.trace``; a warm
    cell replays the trace stored beside its run summary, and a warm cell
    without one falls through to re-simulate (summaries are deterministic,
    so the stored one stays valid).
    """
    cm = CellMetrics(cell.name, cell.pipeline, cell.capacity)
    key = run_key(cell.name, cell.pipeline, cell.capacity, checked, engine,
                  retarget)
    if cache is not None:
        cached = cache.load(key, "run")
        if isinstance(cached, RunSummary):
            if not trace:
                cm.run_cache_hit = True
                return cached, cm, None
            stored = cache.load(key, "trace")
            if stored is not None:
                cm.run_cache_hit = True
                cm.trace = _cell_trace(cell, None, stored, replayed=True)
                cm.obs = _fold_obs(None, stored)
                return cached, cm, None

    compile_payload = None
    if base is None:
        base, seconds, hit, compile_payload = _compile_base_timed(
            cell.name, cell.pipeline, cache, checked, trace, engine)
        cm.stages["compile"] = seconds
        cm.base_cache_hit = hit
    else:
        cm.base_cache_hit = True

    tracer = Tracer() if trace else None
    with obs_use(tracer) if trace else nullcontext():
        t0 = time.perf_counter()
        compiled = with_buffer(base, cell.capacity, checked=checked,
                               retarget=retarget)
        t1 = time.perf_counter()
        outcome = run_compiled(compiled, engine=engine)
    cm.stages["retarget"] = t1 - t0
    cm.stages["simulate"] = time.perf_counter() - t1
    if trace:
        run_payload = tracer.to_payload()
        cm.trace = _cell_trace(cell, compile_payload, run_payload,
                               replayed=False)
        cm.obs = _fold_obs(compile_payload, run_payload)

    expected = benchmark(cell.name).expected()
    if outcome.result.value != expected:
        raise AssertionError(
            f"{cell.name}/{cell.pipeline}@{cell.capacity}: checksum "
            f"{outcome.result.value} != expected {expected}"
        )
    summary = RunSummary(
        name=cell.name,
        pipeline=cell.pipeline,
        capacity=cell.capacity,
        cycles=outcome.counters.cycles,
        bundles=outcome.counters.bundles,
        ops_issued=outcome.counters.ops_issued,
        ops_from_buffer=outcome.counters.ops_from_buffer,
        ops_from_memory=outcome.counters.ops_from_memory,
        static_ops=compiled.static_ops,
        branch_bubbles=outcome.counters.branch_bubbles,
    )
    if cache is not None:
        cache.store(key, "run", summary)
        if trace:
            cache.store(key, "trace", run_payload)
    return summary, cm, base


def _cell_trace(cell: Cell, compile_payload: dict | None,
                run_payload: dict | None, replayed: bool) -> dict:
    return {
        "name": cell.name,
        "pipeline": cell.pipeline,
        "capacity": cell.capacity,
        "compile": compile_payload,
        "run": run_payload,
        "replayed": replayed,
    }


def _fold_obs(compile_payload: dict | None,
              run_payload: dict | None) -> dict | None:
    """Merge the tracer metrics snapshots of a cell's phases into one."""
    registry = MetricsRegistry()
    for payload in (compile_payload, run_payload):
        if payload and payload.get("metrics"):
            registry.merge_snapshot(payload["metrics"])
    return registry.snapshot() if len(registry) else None


def run_cell(
    name: str,
    pipeline: str,
    capacity: int | None,
    cache: ArtifactCache | None = None,
    base: Compiled | None = None,
    metrics: MetricsRecorder | None = None,
    checked: bool | None = None,
    trace: bool = False,
    engine: str | None = None,
    retarget: str | None = None,
) -> RunSummary:
    """The single-cell entry point the experiments facade builds on."""
    summary, cm, _ = _execute_cell(Cell(name, pipeline, capacity), cache, base,
                                   checked_enabled(checked), trace,
                                   engine_choice(engine),
                                   retarget_choice(retarget))
    if metrics is not None:
        metrics.add_cell(cm)
        if cache is not None:
            metrics.merge_cache_stats(cache.stats)
            cache.stats = type(cache.stats)()
    return summary


# --------------------------------------------------------------------------
# pool workers (module-level so they pickle under every start method)


def _worker_base(name: str, pipeline: str, cache_dir: str,
                 cache_enabled: bool, checked: bool = False,
                 trace: bool = False, engine: str = "fast") -> bytes:
    cache = ArtifactCache(cache_dir, enabled=cache_enabled)
    compiled, seconds, hit, payload = _compile_base_timed(
        name, pipeline, cache, checked, trace, engine)
    return pickle.dumps((compiled, seconds, hit, payload, cache.stats))


def _worker_cell(cell: Cell, base_blob: bytes | None, cache_dir: str,
                 cache_enabled: bool, checked: bool = False,
                 trace: bool = False, engine: str = "fast",
                 retarget: str = "overlay") -> bytes:
    cache = ArtifactCache(cache_dir, enabled=cache_enabled)
    base = pickle.loads(base_blob) if base_blob is not None else None
    summary, cm, _ = _execute_cell(cell, cache, base, checked, trace, engine,
                                   retarget)
    cm.worker = f"pid{os.getpid()}"
    return pickle.dumps((summary, cm, cache.stats))


# --------------------------------------------------------------------------
# the grid executor


def run_grid(
    cells: Sequence[Cell],
    workers: int | None = None,
    timeout: float | None = None,
    cache: ArtifactCache | None | str = "default",
    metrics: MetricsRecorder | None = None,
    checked: bool | None = None,
    trace: bool = False,
    engine: str | None = None,
    retarget: str | None = None,
) -> list[RunSummary]:
    """Execute every cell, returning summaries in input-cell order.

    ``workers`` ``<= 1`` (or a one-cell grid) runs serially in-process.
    Otherwise compiled bases fan out first (one task per distinct
    (benchmark, pipeline) group), then the per-cell simulations, each with
    ``timeout`` seconds to produce a result once collection reaches it.
    Timeouts and transient errors are retried once in the parent; checksum
    mismatches (``AssertionError``) fail immediately — they are
    deterministic.  ``checked`` turns on the pipeline's checked mode (a
    :class:`~repro.pipeline.CheckedModeError` is deterministic and not
    retried — it propagates from the first attempt's retry like any
    compile error would, so keep grids small when debugging with it).
    ``trace`` records a span/event trace per cell onto its
    :class:`~repro.runner.metrics.CellMetrics` (see
    :mod:`repro.obs.export` for the exporters).  ``engine`` selects the
    simulator engine (``"ref"``/``"fast"``, default per ``REPRO_ENGINE``);
    it is part of every cache key, so sweeping both engines against one
    cache directory keeps their artifacts separate.  ``retarget`` selects
    the ``with_buffer`` implementation (``"overlay"``/``"legacy"``,
    default per ``REPRO_RETARGET``) and is likewise part of every run
    key.
    """
    if cache == "default":
        cache = default_cache()
    metrics = metrics if metrics is not None else MetricsRecorder()
    workers = resolve_workers(workers)
    metrics.workers = max(1, workers)
    cells = list(cells)
    checked = checked_enabled(checked)
    engine = engine_choice(engine)
    retarget = retarget_choice(retarget)

    try:
        if workers <= 1 or len(cells) <= 1:
            results = _run_serial(cells, cache, metrics, checked=checked,
                                  trace=trace, engine=engine,
                                  retarget=retarget)
        else:
            results = _run_pool(cells, workers, timeout, cache, metrics,
                                checked, trace, engine, retarget)
    finally:
        metrics.finish()
        if cache is not None:
            metrics.merge_cache_stats(cache.stats)
            cache.stats = type(cache.stats)()
    return results


def _run_serial(cells: Sequence[Cell], cache: ArtifactCache | None,
                metrics: MetricsRecorder,
                _execute=None, checked: bool = False,
                trace: bool = False, engine: str = "fast",
                retarget: str = "overlay") -> list[RunSummary]:
    execute = _execute or partial(_execute_cell, trace=trace, engine=engine,
                                  retarget=retarget)
    bases: dict[tuple[str, str], Compiled] = {}
    results: list[RunSummary] = []
    for cell in cells:
        base = bases.get(cell.group)
        try:
            summary, cm, used = execute(cell, cache, base, checked)
        except AssertionError:
            raise
        except Exception:
            summary, cm, used = execute(cell, cache, base, checked)  # retry
            cm.attempts = 2
            cm.retries = 1
        metrics.add_cell(cm)
        results.append(summary)
        if used is not None:
            bases.setdefault(cell.group, used)
    return results


def _run_pool(cells: Sequence[Cell], workers: int, timeout: float | None,
              cache: ArtifactCache | None,
              metrics: MetricsRecorder,
              checked: bool = False,
              trace: bool = False, engine: str = "fast",
              retarget: str = "overlay") -> list[RunSummary]:
    cache_dir = str(cache.root) if cache is not None else ""
    cache_enabled = cache is not None and cache.enabled
    groups = list(dict.fromkeys(cell.group for cell in cells))
    results: list[RunSummary | None] = [None] * len(cells)
    # every pool cell receives its group's base, so compile spans are
    # recorded once per group here and attached to its first traced cell
    base_traces: dict[tuple[str, str], dict | None] = {}
    attached_groups: set[tuple[str, str]] = set()

    def _attach_base_trace(cell: Cell, cm: CellMetrics) -> None:
        if cm.trace is not None and cell.group not in attached_groups:
            attached_groups.add(cell.group)
            cm.trace["compile"] = base_traces.get(cell.group)

    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        # phase 1: one compile task per distinct (benchmark, pipeline)
        base_futures = {
            group: pool.submit(_worker_base, group[0], group[1],
                               cache_dir, cache_enabled, checked, trace,
                               engine)
            for group in groups
        }
        base_blobs: dict[tuple[str, str], bytes] = {}
        for group, future in base_futures.items():
            try:
                compiled, _seconds, _hit, payload, stats = pickle.loads(
                    future.result(timeout=timeout))
            except AssertionError:
                raise
            except Exception:
                # timeout / worker death: retry the compile in the parent
                compiled, _seconds, _hit, payload = _compile_base_timed(
                    group[0], group[1], cache, checked, trace, engine)
                stats = None
            base_blobs[group] = pickle.dumps(compiled)
            base_traces[group] = payload
            if stats is not None:
                metrics.merge_cache_stats(stats)

        # phase 2: per-cell retarget + simulate
        try:
            cell_futures = [
                pool.submit(_worker_cell, cell, base_blobs[cell.group],
                            cache_dir, cache_enabled, checked, trace, engine,
                            retarget)
                for cell in cells
            ]
        except BrokenExecutor:
            # the pool died between phases: finish serially
            for index, cell in enumerate(cells):
                base = pickle.loads(base_blobs[cell.group])
                summary, cm, _ = _execute_cell(cell, cache, base, checked,
                                               trace, engine, retarget)
                _attach_base_trace(cell, cm)
                metrics.add_cell(cm)
                results[index] = summary
            return results  # type: ignore[return-value]

        for index, (cell, future) in enumerate(zip(cells, cell_futures)):
            try:
                summary, cm, stats = pickle.loads(
                    future.result(timeout=timeout))
            except AssertionError:
                raise
            except Exception:
                # transient (worker death, timeout, pickle hiccup):
                # retry once in the parent, serially
                base = pickle.loads(base_blobs[cell.group])
                summary, cm, _ = _execute_cell(cell, cache, base, checked,
                                               trace, engine, retarget)
                cm.attempts = 2
                cm.retries = 1
                stats = None
            _attach_base_trace(cell, cm)
            metrics.add_cell(cm)
            if stats is not None:
                metrics.merge_cache_stats(stats)
            results[index] = summary
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results  # type: ignore[return-value]
