"""Content-addressed on-disk artifact cache.

Entries are keyed by a SHA-256 over everything that determines the
artifact: the benchmark's MKC source text, the pipeline name, the full
compiler-flag dictionary and the ``repro`` package version.  Values are
pickles wrapped in a small envelope carrying the cache format revision;
anything that fails to load — truncated pickle, foreign object, stale
format, wrong key — is *evicted*, never raised, so a corrupt or outdated
cache can only cost a recompute.

Writes are atomic (``os.replace`` of a same-directory temp file), which
also makes concurrent writers from a process pool safe: both produce the
same content-addressed bytes and the last rename wins.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import repro

#: bump to invalidate every existing cache entry on format changes
#: (2: ``Compiled`` gained the ``overlay`` field and run keys gained the
#: retarget axis — pre-overlay base pickles and run entries are stale)
CACHE_FORMAT = 2

#: default cache location, relative to the working directory (gitignored)
DEFAULT_CACHE_DIR = ".repro_cache"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"


def cache_key(source: str, pipeline: str, flags: dict | None = None,
              version: str | None = None) -> str:
    """Content hash of everything that determines a compiled artifact.

    ``flags`` is canonicalized (sorted keys, JSON) so dict ordering never
    perturbs the key; ``version`` defaults to the package version so a
    release invalidates old artifacts wholesale.
    """
    payload = json.dumps(
        {
            "source": source,
            "pipeline": pipeline,
            "flags": flags or {},
            "version": version if version is not None else repro.__version__,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "evictions": self.evictions}


@dataclass
class ArtifactCache:
    """Pickle store under ``root`` with hit/miss/eviction accounting.

    ``kind`` namespaces the artifact classes sharing one key space:
    ``"base"`` (a capacity-independent :class:`~repro.pipeline.Compiled`),
    ``"run"`` (a :class:`~repro.runner.summary.RunSummary`) and
    ``"trace"`` (a tracer payload dict recorded beside either, so warm
    cells replay their traces).
    """

    root: Path
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, key: str, kind: str) -> Path:
        return self.root / key[:2] / f"{key}.{kind}.pkl"

    def load(self, key: str, kind: str):
        """Return the cached object, or ``None`` on miss.

        A present-but-unusable entry (corrupt pickle, stale format, key
        mismatch) counts as a miss *and* is deleted so it cannot keep
        costing a read.
        """
        if not self.enabled:
            self.stats.misses += 1
            return None
        path = self.path_for(key, kind)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            envelope = pickle.loads(blob)
            if (not isinstance(envelope, dict)
                    or envelope.get("format") != CACHE_FORMAT
                    or envelope.get("key") != key):
                raise ValueError("stale or foreign cache entry")
            value = envelope["payload"]
        except Exception:
            # bad entry: evict, never crash
            self.evict(key, kind)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        try:
            # refresh mtime so it doubles as an access stamp: the LRU gc
            # (gc_lru, the serve shards, `runner cache gc`) evicts by it
            os.utime(path)
        except OSError:
            pass
        return value

    def store(self, key: str, kind: str, value) -> Path | None:
        if not self.enabled:
            return None
        path = self.path_for(key, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(
            {"format": CACHE_FORMAT, "key": key, "payload": value},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name + ".")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    def evict(self, key: str, kind: str) -> None:
        try:
            self.path_for(key, kind).unlink()
            self.stats.evictions += 1
        except OSError:
            pass


# --------------------------------------------------------------------------
# maintenance: scanning, usage accounting and LRU garbage collection
#
# These operate on the on-disk layout directly (root/<key[:2]>/<key>.<kind>
# .pkl), so they work on any cache directory regardless of which process
# wrote it.  ``load`` refreshes an entry's mtime on every hit, making mtime
# an access-recency proxy; ``gc_lru`` evicts oldest-accessed-first.  The
# sharded service cache (:mod:`repro.serve.shards`) and the ``python -m
# repro.runner cache`` subcommand both build on these.


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache file, as seen by the maintenance tools."""

    key: str
    kind: str
    bytes: int
    mtime: float
    path: Path


def iter_entries(root: str | os.PathLike,
                 prefixes: Iterable[str] | None = None) -> list[CacheEntry]:
    """Every parseable entry under ``root``, unsorted.

    ``prefixes`` restricts the scan to those two-hex-digit key prefixes
    (the per-shard domains).  Temp files from in-flight atomic writes
    (``<name>.pkl.XXXX``) and anything else that doesn't parse as
    ``<key>.<kind>.pkl`` are skipped, not errors.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    wanted = set(prefixes) if prefixes is not None else None
    entries: list[CacheEntry] = []
    for sub in root.iterdir():
        if not sub.is_dir() or len(sub.name) != 2:
            continue
        if wanted is not None and sub.name not in wanted:
            continue
        for path in sub.iterdir():
            parts = path.name.split(".")
            if len(parts) != 3 or parts[2] != "pkl":
                continue
            key, kind = parts[0], parts[1]
            if not key.startswith(sub.name):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # raced with an eviction
            entries.append(CacheEntry(key, kind, stat.st_size,
                                      stat.st_mtime, path))
    return entries


def usage_by_kind(entries: Iterable[CacheEntry]) -> dict[str, dict[str, int]]:
    """``{kind: {"entries": n, "bytes": total}}``, sorted by kind."""
    out: dict[str, dict[str, int]] = {}
    for entry in entries:
        bucket = out.setdefault(entry.kind, {"entries": 0, "bytes": 0})
        bucket["entries"] += 1
        bucket["bytes"] += entry.bytes
    return dict(sorted(out.items()))


def gc_lru(root: str | os.PathLike, max_bytes: int,
           prefixes: Iterable[str] | None = None,
           dry_run: bool = False) -> tuple[list[CacheEntry], int]:
    """Evict least-recently-used entries until the total fits ``max_bytes``.

    Returns ``(evicted, kept_bytes)``.  Eviction order is oldest mtime
    first (``load`` touches entries on every hit, so mtime tracks
    access).  ``dry_run`` reports what would go without unlinking.
    A concurrent writer can race the scan; a file that vanishes under us
    counts as already evicted.
    """
    entries = sorted(iter_entries(root, prefixes), key=lambda e: e.mtime)
    total = sum(e.bytes for e in entries)
    evicted: list[CacheEntry] = []
    for entry in entries:
        if total <= max_bytes:
            break
        if not dry_run:
            try:
                entry.path.unlink()
            except OSError:
                pass
        evicted.append(entry)
        total -= entry.bytes
    return evicted, total


def default_cache(cache_dir: str | os.PathLike | None = None,
                  enabled: bool | None = None) -> ArtifactCache:
    """Cache configured from arguments, falling back to the environment."""
    if cache_dir is None:
        cache_dir = os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR
    if enabled is None:
        enabled = not os.environ.get(ENV_NO_CACHE)
    return ArtifactCache(Path(cache_dir), enabled=enabled)
