"""The per-cell result record and the shared plain-text table renderer.

``RunSummary`` lived in :mod:`repro.experiments.common` originally; it
moved here so the runner (which produces and caches summaries) does not
depend on the experiments layer that consumes them.  ``experiments.common``
re-exports both names, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunSummary:
    name: str
    pipeline: str
    capacity: int | None
    cycles: int
    bundles: int
    ops_issued: int
    ops_from_buffer: int
    ops_from_memory: int
    static_ops: int
    branch_bubbles: int

    @property
    def buffer_fraction(self) -> float:
        if self.ops_issued == 0:
            return 0.0
        return self.ops_from_buffer / self.ops_issued


def format_table(headers: list[str], rows: list[list], title: str = "",
                 align: list[str] | None = None) -> str:
    """Plain-text table.  ``align`` gives one ``"l"``/``"r"`` per column
    (default all left-aligned, matching the historical layout); a row that
    is the single string ``"-"`` renders as a separator rule."""
    widths = [len(h) for h in headers]
    rendered: list[list[str] | str] = [
        row if row == "-" else [_fmt(cell) for cell in row] for row in rows
    ]
    for row in rendered:
        if row == "-":
            continue
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    if align is None:
        align = ["l"] * len(headers)

    def _pad(cell: str, width: int, column: int) -> str:
        if column < len(align) and align[column] == "r":
            return cell.rjust(width)
        return cell.ljust(width)

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(_pad(h, w, i)
                           for i, (h, w) in enumerate(zip(headers, widths))))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        if row == "-":
            lines.append("  ".join("-" * w for w in widths))
            continue
        lines.append("  ".join(_pad(c, w, i)
                               for i, (c, w) in enumerate(zip(row, widths))))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
