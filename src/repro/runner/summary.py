"""The per-cell result record and the shared plain-text table renderer.

``RunSummary`` lived in :mod:`repro.experiments.common` originally; it
moved here so the runner (which produces and caches summaries) does not
depend on the experiments layer that consumes them.  ``experiments.common``
re-exports both names, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunSummary:
    name: str
    pipeline: str
    capacity: int | None
    cycles: int
    bundles: int
    ops_issued: int
    ops_from_buffer: int
    ops_from_memory: int
    static_ops: int
    branch_bubbles: int

    @property
    def buffer_fraction(self) -> float:
        if self.ops_issued == 0:
            return 0.0
        return self.ops_from_buffer / self.ops_issued


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    widths = [len(h) for h in headers]
    rendered = [[_fmt(cell) for cell in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
