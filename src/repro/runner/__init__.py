"""Parallel, disk-cached experiment runner.

The figure/table harness in :mod:`repro.experiments` expresses every data
point as a *cell* — one ``(benchmark, pipeline, capacity)`` triple that is
compiled, retargeted at a buffer capacity, simulated and summarized.  This
package makes cells cheap and repeatable:

- :mod:`repro.runner.cache` — content-addressed on-disk artifact cache
  keyed by benchmark source + pipeline + compiler flags + package version.
  Compiled bases and run summaries persist across processes, so a sweep
  only ever compiles/simulates a configuration once per source change.
- :mod:`repro.runner.parallel` — cell execution and process-pool fan-out
  over a (benchmark × pipeline × capacity) grid with per-cell timeout,
  retry-once on transient failure and deterministic result ordering.
- :mod:`repro.runner.metrics` — wall-time / cache-traffic / per-stage
  timing accounting, emitted as JSON or a human table.
- :mod:`repro.runner.cli` — ``python -m repro.runner`` front end.

Environment knobs (all optional):

``REPRO_CACHE_DIR``
    cache location (default ``.repro_cache`` under the current directory)
``REPRO_NO_CACHE``
    any non-empty value disables the on-disk cache entirely
``REPRO_WORKERS``
    default process-pool width (``0``/``1`` → serial in-process)
``REPRO_TRACE``
    ``1`` records per-cell traces into ``.repro_trace``; any other
    non-empty value is used as the trace directory (see :mod:`repro.obs`)
"""

from repro.runner.cache import ArtifactCache, CacheStats, cache_key, default_cache
from repro.runner.metrics import MetricsRecorder, format_table
from repro.runner.parallel import (
    Cell,
    compile_base,
    expand_grid,
    run_cell,
    run_grid,
)
from repro.runner.summary import RunSummary

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "Cell",
    "MetricsRecorder",
    "RunSummary",
    "cache_key",
    "compile_base",
    "default_cache",
    "expand_grid",
    "format_table",
    "run_cell",
    "run_grid",
]
