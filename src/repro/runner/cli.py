"""``python -m repro.runner`` — run an experiment grid from the shell.

Examples::

    # one smoke cell, reporting cache traffic as JSON
    python -m repro.runner --benchmarks adpcm_enc --pipelines aggressive \\
        --capacities 64 --json metrics.json

    # the full Figure 7 grid, 4 workers, fresh cache
    python -m repro.runner --capacities 16,32,64,128,256,512,1024,2048 \\
        --workers 4 --cache-dir /tmp/repro-cache

    # trace one cell; open trace.json in https://ui.perfetto.dev
    python -m repro.runner --benchmarks mpg123 --pipelines aggressive \\
        --capacities 128 --trace /tmp/repro-trace

    # cache maintenance: per-kind usage, then evict LRU past 256 MiB
    python -m repro.runner cache stats
    python -m repro.runner cache gc --max-bytes 256m

Exit status is non-zero on any checksum mismatch.  ``--json`` writes the
:class:`~repro.runner.metrics.MetricsRecorder` payload (wall time,
per-cell stage timings, cache hits/misses/evictions) for machine
consumption; the human table always prints unless ``--quiet``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.bench import benchmark_names
from repro.obs import DEFAULT_TRACE_DIR, trace_dir_from_env
from repro.obs.export import (
    REPORT_FILENAME,
    TRACE_FILENAME,
    flat_report,
    to_chrome_trace,
    write_json,
)
from repro.pipeline import CheckedModeError
from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    ENV_CACHE_DIR,
    default_cache,
    gc_lru,
    iter_entries,
    usage_by_kind,
)
from repro.runner.metrics import MetricsRecorder
from repro.runner.parallel import PIPELINES, expand_grid, run_grid
from repro.runner.summary import format_table
from repro.loopbuffer.overlay import ENV_RETARGET, RETARGET_MODES
from repro.sim.engine import ENGINES, ENV_ENGINE


def _csv(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def _capacities(value: str) -> list[int | None]:
    out: list[int | None] = []
    for item in _csv(value):
        out.append(None if item.lower() in ("none", "off", "0") else int(item))
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Parallel, disk-cached (benchmark x pipeline x "
                    "capacity) experiment grid runner.",
    )
    parser.add_argument("--benchmarks", type=_csv, default=None,
                        metavar="NAME[,NAME...]",
                        help="benchmark subset (default: the whole Table 1 "
                             "suite)")
    parser.add_argument("--pipelines", type=_csv, default=list(PIPELINES),
                        metavar="PIPE[,PIPE...]",
                        help="traditional, aggressive or both (default both)")
    parser.add_argument("--capacities", type=_capacities, default=[256],
                        metavar="N[,N...]",
                        help="buffer capacities in ops; 'none' disables the "
                             "buffer (default 256)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: REPRO_WORKERS or "
                             "the core count; 0/1 = serial)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-cell timeout in seconds (pool mode only)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: "
                             "REPRO_CACHE_DIR or .repro_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk cache entirely")
    parser.add_argument("--checked", action="store_true",
                        help="compile in checked mode: run the semantic "
                             "sanitizer after every pass and fail on the "
                             "first violation (also: REPRO_CHECKED=1)")
    parser.add_argument("--engine", choices=ENGINES, default=None,
                        help="simulator engine: 'fast' predecodes blocks "
                             "into thunk lists, 'ref' is the reference "
                             "interpreter; both are bit-identical (default: "
                             f"{ENV_ENGINE} or 'fast')")
    parser.add_argument("--retarget", choices=RETARGET_MODES, default=None,
                        help="with_buffer implementation: 'overlay' shares "
                             "the base module and materializes only rec'd "
                             "preheaders, 'legacy' deep-copies the module "
                             "per capacity; summaries are byte-identical "
                             f"(default: {ENV_RETARGET} or 'overlay')")
    parser.add_argument("--trace", dest="trace_dir", nargs="?",
                        const=DEFAULT_TRACE_DIR,
                        default=trace_dir_from_env(), metavar="DIR",
                        help="record per-cell span/event traces and write "
                             f"{TRACE_FILENAME} (Chrome trace-event / "
                             f"Perfetto) plus {REPORT_FILENAME} into DIR "
                             f"(default {DEFAULT_TRACE_DIR}; also: "
                             "REPRO_TRACE=1 or REPRO_TRACE=DIR)")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="FILE",
                        help="write runner metrics JSON here ('-' = stdout)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the human-readable tables")
    return parser


# --------------------------------------------------------------------------
# cache maintenance: ``python -m repro.runner cache stats|gc``


def _size(value: str) -> int:
    """Byte count with an optional k/m/g suffix (binary multiples)."""
    value = value.strip().lower()
    factor = 1
    for suffix, mult in (("k", 1 << 10), ("m", 1 << 20), ("g", 1 << 30)):
        if value.endswith(suffix):
            value, factor = value[:-1], mult
            break
    return int(float(value) * factor)


def build_cache_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner cache",
        description="Artifact-cache maintenance: per-kind usage "
                    "accounting and LRU eviction.",
    )
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: REPRO_CACHE_DIR "
                             f"or {DEFAULT_CACHE_DIR})")
    sub = parser.add_subparsers(dest="cache_command", required=True)
    stats = sub.add_parser(
        "stats", help="entry count and bytes per artifact kind")
    stats.add_argument("--json", dest="json_path", default=None,
                       metavar="FILE",
                       help="write the usage payload here ('-' = stdout)")
    gc = sub.add_parser(
        "gc", help="evict least-recently-used entries past a size bound")
    gc.add_argument("--max-bytes", type=_size, required=True, metavar="N",
                    help="target total size; accepts k/m/g suffixes "
                         "(e.g. 256m)")
    gc.add_argument("--dry-run", action="store_true",
                    help="report what would be evicted without deleting")
    gc.add_argument("--json", dest="json_path", default=None, metavar="FILE",
                    help="write the eviction payload here ('-' = stdout)")
    return parser


def _emit_json(payload: dict, json_path: str | None) -> None:
    if not json_path:
        return
    text = json.dumps(payload, indent=2, sort_keys=True)
    if json_path == "-":
        print(text)
    else:
        Path(json_path).write_text(text + "\n")


def cache_main(argv: list[str]) -> int:
    args = build_cache_parser().parse_args(argv)
    root = Path(args.cache_dir or os.environ.get(ENV_CACHE_DIR)
                or DEFAULT_CACHE_DIR)

    if args.cache_command == "stats":
        entries = iter_entries(root)
        usage = usage_by_kind(entries)
        total_bytes = sum(e.bytes for e in entries)
        rows: list = [[kind, bucket["entries"], bucket["bytes"]]
                      for kind, bucket in usage.items()]
        if rows:
            rows.append("-")
        rows.append([f"total ({root})", len(entries), total_bytes])
        print(format_table(["kind", "entries", "bytes"], rows,
                           "artifact cache usage", align=["l", "r", "r"]))
        _emit_json({"root": str(root), "kinds": usage,
                    "entries": len(entries), "bytes": total_bytes},
                   args.json_path)
        return 0

    assert args.cache_command == "gc"
    evicted, kept_bytes = gc_lru(root, args.max_bytes, dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    print(f"{verb} {len(evicted)} entr{'y' if len(evicted) == 1 else 'ies'} "
          f"({sum(e.bytes for e in evicted)} bytes); {kept_bytes} bytes "
          f"kept (bound {args.max_bytes})")
    _emit_json({
        "root": str(root),
        "max_bytes": args.max_bytes,
        "dry_run": args.dry_run,
        "evicted": [{"key": e.key, "kind": e.kind, "bytes": e.bytes}
                    for e in evicted],
        "evicted_bytes": sum(e.bytes for e in evicted),
        "kept_bytes": kept_bytes,
    }, args.json_path)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["cache"]:
        return cache_main(argv[1:])
    args = build_parser().parse_args(argv)
    names = args.benchmarks or benchmark_names()
    for pipeline in args.pipelines:
        if pipeline not in PIPELINES:
            print(f"unknown pipeline {pipeline!r} (choose from "
                  f"{', '.join(PIPELINES)})", file=sys.stderr)
            return 2
    known = set(benchmark_names())
    for name in names:
        if name not in known:
            print(f"unknown benchmark {name!r} (choose from "
                  f"{', '.join(sorted(known))})", file=sys.stderr)
            return 2

    cache = default_cache(args.cache_dir, enabled=not args.no_cache)
    metrics = MetricsRecorder()
    cells = expand_grid(names, args.pipelines, args.capacities)
    try:
        summaries = run_grid(cells, workers=args.workers,
                             timeout=args.timeout, cache=cache,
                             metrics=metrics,
                             checked=args.checked or None,
                             trace=bool(args.trace_dir),
                             engine=args.engine,
                             retarget=args.retarget)
    except AssertionError as exc:
        print(f"CHECKSUM MISMATCH: {exc}", file=sys.stderr)
        return 1
    except CheckedModeError as exc:
        print(f"CHECKED MODE: {exc}", file=sys.stderr)
        return 1

    if not args.quiet:
        rows = [
            [s.name, s.pipeline,
             s.capacity if s.capacity is not None else "-",
             s.cycles, s.ops_issued, f"{s.buffer_fraction:.1%}"]
            for s in summaries
        ]
        print(format_table(
            ["benchmark", "pipeline", "cap", "cycles", "ops", "buffer%"],
            rows, "grid results"))
        print()
        print(metrics.to_table())

    if args.trace_dir:
        cell_traces = [c.trace for c in metrics.cells if c.trace is not None]
        trace_path = write_json(Path(args.trace_dir) / TRACE_FILENAME,
                                to_chrome_trace(cell_traces))
        report_path = write_json(Path(args.trace_dir) / REPORT_FILENAME,
                                 flat_report(cell_traces))
        if not args.quiet:
            replayed = sum(1 for t in cell_traces if t.get("replayed"))
            print(f"\ntrace: {trace_path} ({len(cell_traces)} cells, "
                  f"{replayed} replayed from cache)\nreport: {report_path}")

    if args.json_path:
        payload = metrics.to_json()
        if args.json_path == "-":
            print(payload)
        else:
            Path(args.json_path).write_text(payload + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
