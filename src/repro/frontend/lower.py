"""AST -> IR lowering for MKC.

Lowering conventions chosen to produce the canonical loop shapes the rest
of the compiler recognizes:

* ``for``/``while`` loops are emitted bottom-tested with a preheader
  guard: ``init; br !cond exit; header: body; update; br cond header`` —
  exactly the counted-loop pattern :func:`repro.analysis.loops.analyze_trip_count`
  matches;
* ``&&``/``||`` over *pure* operands lower to parallel bitwise evaluation
  (DSP-compiler style, keeping CFGs simple); impure operands get genuine
  short-circuit control flow;
* pure ternaries lower to ``select``; impure ones to a diamond;
* local arrays live in the frame (word-addressed), globals at their
  loader-assigned base; pointer parameters are address-valued ints, so
  ``p[i]`` is a word load at ``p + i``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.ir.registers import GlobalRef, Imm, Operand, VReg

from . import ast


class LowerError(Exception):
    pass


_BINOPS = {
    "+": Opcode.ADD, "-": Opcode.SUB, "*": Opcode.MUL, "/": Opcode.DIV,
    "%": Opcode.REM, "&": Opcode.AND, "|": Opcode.OR, "^": Opcode.XOR,
    "<<": Opcode.SHL, ">>": Opcode.SAR,
}
_CMPOPS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
           ">": "gt", ">=": "ge"}
_INVERSE = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
            "le": "gt", "gt": "le"}

INTRINSICS = {
    "__sat_add": (Opcode.SADD, 2),
    "__sat_sub": (Opcode.SSUB, 2),
    "__sat": (Opcode.SAT, 2),
    "__clip": (Opcode.CLIP, 3),
    "__abs": (Opcode.ABS, 1),
    "__min": (Opcode.MIN, 2),
    "__max": (Opcode.MAX, 2),
    "__mulh": (Opcode.MULH, 2),
}


@dataclass
class _Scalar:
    reg: VReg


@dataclass
class _Array:
    global_name: str | None = None
    frame_offset: int | None = None


@dataclass
class _LoopContext:
    continue_target: str
    break_target: str


class _FunctionLowerer:
    def __init__(self, module: Module, fdef: ast.FunctionDef,
                 known_functions: set[str]) -> None:
        self.module = module
        self.fdef = fdef
        self.known = known_functions
        params = []
        self.func = Function(fdef.name)
        self.scopes: list[dict[str, _Scalar | _Array]] = [{}]
        for param in fdef.params:
            reg = self.func.new_reg()
            params.append(reg)
            self._declare(param.name, _Scalar(reg))
        self.func.params = params
        self.builder = IRBuilder(self.func, self.func.add_block("entry"))
        self.loop_stack: list[_LoopContext] = []
        self._terminated = False

    # -- scopes --------------------------------------------------------------------

    def _declare(self, name: str, binding) -> None:
        if name in self.scopes[-1]:
            raise LowerError(f"{self.fdef.name}: duplicate variable {name!r}")
        self.scopes[-1][name] = binding

    def _lookup(self, name: str):
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.module.globals:
            return _Array(global_name=name)
        raise LowerError(f"{self.fdef.name}: undefined variable {name!r}")

    # -- driver ---------------------------------------------------------------------

    def lower(self) -> Function:
        self._lower_statements(self.fdef.body)
        if not self._terminated:
            self.builder.ret(Imm(0) if self.fdef.returns_value else None)
        self._sweep_unreachable()
        self.module.add_function(self.func)
        return self.func

    def _sweep_unreachable(self) -> None:
        # joins whose every arm returned (e.g. the endif of an exhaustive
        # if/else chain) end up with no predecessors; the verifier rejects
        # unreachable blocks, so drop them before handing the function over
        seen: set[str] = set()
        stack = [self.func.entry.label]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.func.successors(self.func.block(label)))
        doomed = [b.label for b in self.func.blocks if b.label not in seen]
        for label in doomed:
            self.func.remove_block(label)

    def _lower_statements(self, stmts) -> None:
        for stmt in stmts:
            if self._terminated:
                return  # unreachable code after return/break/continue
            self._lower_statement(stmt)

    def _start_block(self, label: str) -> None:
        self.builder.at(self.func.add_block(label))
        self._terminated = False

    # -- statements --------------------------------------------------------------------

    def _lower_statement(self, stmt) -> None:  # noqa: C901
        b = self.builder
        if isinstance(stmt, ast.Declare):
            self._lower_declare(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._value(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_loop(init=None, cond=stmt.cond, update=None,
                             body=stmt.body, pretest=True)
        elif isinstance(stmt, ast.DoWhile):
            self._lower_loop(init=None, cond=stmt.cond, update=None,
                             body=stmt.body, pretest=False)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.scopes.append({})
                self._lower_statement(stmt.init)
                self._lower_loop(None, stmt.cond, stmt.update, stmt.body,
                                 pretest=True)
                self.scopes.pop()
            else:
                self._lower_loop(None, stmt.cond, stmt.update, stmt.body,
                                 pretest=True)
        elif isinstance(stmt, ast.Return):
            value = self._value(stmt.value) if stmt.value is not None else None
            b.ret(value)
            self._terminated = True
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise LowerError(f"{self.fdef.name}: break outside loop")
            b.jump(self.loop_stack[-1].break_target)
            self._terminated = True
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise LowerError(f"{self.fdef.name}: continue outside loop")
            b.jump(self.loop_stack[-1].continue_target)
            self._terminated = True
        else:
            raise LowerError(f"unhandled statement {stmt!r}")

    def _lower_declare(self, stmt: ast.Declare) -> None:
        if stmt.size is None:
            reg = self.func.new_reg()
            self._declare(stmt.name, _Scalar(reg))
            if stmt.init is not None:
                self.builder.mov(self._value(stmt.init), dest=reg)
            return
        if self.func.frame_base is None:
            self.func.frame_base = self.func.new_reg()
        offset = self.func.frame_words
        self.func.frame_words += stmt.size
        self._declare(stmt.name, _Array(frame_offset=offset))
        if stmt.init_list:
            for i, value in enumerate(stmt.init_list):
                self.builder.store(self.func.frame_base,
                                   offset + i, Imm(value))

    def _lower_assign(self, stmt: ast.Assign) -> None:
        b = self.builder
        if isinstance(stmt.target, ast.Name):
            binding = self._lookup(stmt.target.ident)
            if not isinstance(binding, _Scalar):
                raise LowerError(
                    f"{self.fdef.name}: cannot assign to array "
                    f"{stmt.target.ident!r}"
                )
            if stmt.op == "=":
                b.mov(self._value(stmt.value), dest=binding.reg)
            else:
                opcode = _BINOPS[stmt.op[:-1]]
                b.emit(opcode, [binding.reg, self._value(stmt.value)],
                       dest=binding.reg)
            return
        # array element
        base, offset = self._address(stmt.target)
        if stmt.op == "=":
            b.store(base, offset, self._value(stmt.value))
        else:
            old = b.load(base, offset)
            opcode = _BINOPS[stmt.op[:-1]]
            new = b.emit(opcode, [old, self._value(stmt.value)])
            b.store(base, offset, new)

    def _lower_if(self, stmt: ast.If) -> None:
        b = self.builder
        else_label = self.func.new_label("else")
        end_label = self.func.new_label("endif")
        self._branch_if_false(stmt.cond,
                              else_label if stmt.other else end_label)
        self.scopes.append({})
        self._lower_statements(stmt.then)
        self.scopes.pop()
        then_terminated = self._terminated
        if stmt.other:
            if not then_terminated:
                b.jump(end_label)
            self._start_block(else_label)
            self.scopes.append({})
            self._lower_statements(stmt.other)
            self.scopes.pop()
            else_terminated = self._terminated
            self._start_block(end_label)
            self._terminated = then_terminated and else_terminated
            if self._terminated:
                # both arms returned: endif unreachable but must terminate
                self.builder.ret(Imm(0) if self.fdef.returns_value else None)
        else:
            self._start_block(end_label)

    def _lower_loop(self, init, cond, update, body, pretest: bool) -> None:
        b = self.builder
        header = self.func.new_label("loop")
        latch = self.func.new_label("latch")
        exit_label = self.func.new_label("endloop")

        if pretest and cond is not None:
            self._branch_if_false(cond, exit_label)
        self._start_block(header)
        self.loop_stack.append(_LoopContext(latch, exit_label))
        self.scopes.append({})
        self._lower_statements(body)
        self.scopes.pop()
        self.loop_stack.pop()
        body_terminated = self._terminated

        self._start_block(latch)
        if update is not None:
            self._lower_statement(update)
        if cond is None:
            b.jump(header)
        else:
            self._branch_if_true(cond, header)
        self._start_block(exit_label)

        # if the body always terminates (e.g. unconditional return) the
        # latch is only reachable via continue; leave as emitted.
        _ = body_terminated

    # -- conditions ----------------------------------------------------------------------

    def _branch_if_true(self, cond, target: str) -> None:
        test, a, c = self._condition(cond)
        self.builder.br(test, a, c, target)

    def _branch_if_false(self, cond, target: str) -> None:
        test, a, c = self._condition(cond)
        self.builder.br(_INVERSE[test], a, c, target)

    def _condition(self, cond) -> tuple[str, Operand, Operand]:
        """(test, lhs, rhs) for a branch on ``cond``."""
        if isinstance(cond, ast.Binary) and cond.op in _CMPOPS:
            return (_CMPOPS[cond.op], self._value(cond.left),
                    self._value(cond.right))
        if isinstance(cond, ast.Unary) and cond.op == "!":
            test, a, c = self._condition(cond.operand)
            return _INVERSE[test], a, c
        return "ne", self._value(cond), Imm(0)

    # -- expressions -----------------------------------------------------------------------

    def _is_pure(self, expr) -> bool:
        if isinstance(expr, (ast.IntLit, ast.Name)):
            return True
        if isinstance(expr, ast.Index):
            return self._is_pure(expr.base) and self._is_pure(expr.index)
        if isinstance(expr, ast.Unary):
            return self._is_pure(expr.operand)
        if isinstance(expr, ast.Binary):
            # division can trap; keep it out of speculative select arms
            if expr.op in ("/", "%"):
                return False
            return self._is_pure(expr.left) and self._is_pure(expr.right)
        if isinstance(expr, ast.Logical):
            return self._is_pure(expr.left) and self._is_pure(expr.right)
        if isinstance(expr, ast.Ternary):
            return (self._is_pure(expr.cond) and self._is_pure(expr.then)
                    and self._is_pure(expr.other))
        if isinstance(expr, ast.Call):
            opcode = INTRINSICS.get(expr.callee)
            return opcode is not None and all(map(self._is_pure, expr.args))
        return False  # IncDec, user calls

    def _value(self, expr, want_value: bool = True) -> Operand:  # noqa: C901
        b = self.builder
        if isinstance(expr, ast.IntLit):
            return Imm(expr.value)
        if isinstance(expr, ast.Name):
            binding = self._lookup(expr.ident)
            if isinstance(binding, _Scalar):
                return binding.reg
            return self._array_base(binding)
        if isinstance(expr, ast.Index):
            base, offset = self._address(expr)
            return b.load(base, offset)
        if isinstance(expr, ast.Unary):
            value = self._value(expr.operand)
            if expr.op == "-":
                return b.emit(Opcode.NEG, [value])
            if expr.op == "~":
                return b.emit(Opcode.NOT, [value])
            return b.cmp("eq", value, Imm(0))
        if isinstance(expr, ast.Binary):
            if expr.op in _CMPOPS:
                return b.cmp(_CMPOPS[expr.op],
                             self._value(expr.left), self._value(expr.right))
            return b.emit(_BINOPS[expr.op],
                          [self._value(expr.left), self._value(expr.right)])
        if isinstance(expr, ast.Logical):
            return self._lower_logical(expr)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, want_value)
        if isinstance(expr, ast.IncDec):
            return self._lower_incdec(expr)
        raise LowerError(f"unhandled expression {expr!r}")

    def _lower_logical(self, expr: ast.Logical) -> Operand:
        b = self.builder
        if self._is_pure(expr.right):
            left = b.cmp("ne", self._value(expr.left), Imm(0))
            right = b.cmp("ne", self._value(expr.right), Imm(0))
            opcode = Opcode.AND if expr.op == "&&" else Opcode.OR
            return b.emit(opcode, [left, right])
        # genuine short circuit
        result = self.func.new_reg()
        skip = self.func.new_label("sc")
        left = b.cmp("ne", self._value(expr.left), Imm(0))
        b.mov(left, dest=result)
        if expr.op == "&&":
            b.br("eq", left, Imm(0), skip)
        else:
            b.br("ne", left, Imm(0), skip)
        right = b.cmp("ne", self._value(expr.right), Imm(0))
        b.mov(right, dest=result)
        self._start_block(skip)
        return result

    def _lower_ternary(self, expr: ast.Ternary) -> Operand:
        b = self.builder
        if self._is_pure(expr.then) and self._is_pure(expr.other):
            cond = b.cmp(*self._condition_parts(expr.cond))
            return b.emit(Opcode.SELECT, [cond, self._value(expr.then),
                                          self._value(expr.other)])
        result = self.func.new_reg()
        else_label = self.func.new_label("terne")
        end_label = self.func.new_label("ternx")
        self._branch_if_false(expr.cond, else_label)
        b.mov(self._value(expr.then), dest=result)
        b.jump(end_label)
        self._start_block(else_label)
        b.mov(self._value(expr.other), dest=result)
        self._start_block(end_label)
        return result

    def _condition_parts(self, cond):
        test, a, c = self._condition(cond)
        return test, a, c

    def _lower_call(self, expr: ast.Call, want_value: bool) -> Operand:
        b = self.builder
        intrinsic = INTRINSICS.get(expr.callee)
        if intrinsic is not None:
            opcode, arity = intrinsic
            if len(expr.args) != arity:
                raise LowerError(
                    f"{expr.callee} expects {arity} args, got {len(expr.args)}"
                )
            return b.emit(opcode, [self._value(a) for a in expr.args])
        if expr.callee not in self.known:
            raise LowerError(f"call to unknown function {expr.callee!r}")
        args = [self._value(a) for a in expr.args]
        dest = self.func.new_reg() if want_value else self.func.new_reg()
        b.call(expr.callee, args, dest=dest)
        return dest

    def _lower_incdec(self, expr: ast.IncDec) -> Operand:
        b = self.builder
        delta = Imm(1) if expr.op == "++" else Imm(-1)
        if isinstance(expr.target, ast.Name):
            binding = self._lookup(expr.target.ident)
            if not isinstance(binding, _Scalar):
                raise LowerError("++/-- target must be scalar or element")
            old = None
            if not expr.prefix:
                old = b.mov(binding.reg)
            b.add(binding.reg, delta, dest=binding.reg)
            return binding.reg if expr.prefix else old
        base, offset = self._address(expr.target)
        old = b.load(base, offset)
        new = b.add(old, delta)
        b.store(base, offset, new)
        return new if expr.prefix else old

    # -- addressing -------------------------------------------------------------------------

    def _array_base(self, binding: _Array) -> Operand:
        if binding.global_name is not None:
            return self.builder.mov(GlobalRef(binding.global_name))
        assert self.func.frame_base is not None
        if binding.frame_offset == 0:
            return self.func.frame_base
        return self.builder.add(self.func.frame_base,
                                Imm(binding.frame_offset))

    def _address(self, expr: ast.Index) -> tuple[Operand, Operand]:
        """(base, offset) operands for a word access."""
        base_value = self._base_value(expr.base)
        index = self._value(expr.index)
        if isinstance(index, Imm):
            return base_value, index
        return self.builder.add(base_value, index), Imm(0)

    def _base_value(self, expr) -> Operand:
        if isinstance(expr, ast.Name):
            binding = self._lookup(expr.ident)
            if isinstance(binding, _Scalar):
                return binding.reg  # pointer-valued int
            return self._array_base(binding)
        return self._value(expr)


def lower_program(program: ast.ProgramAST, name: str = "module") -> Module:
    """Lower a parsed MKC program into an IR module."""
    module = Module(name)
    for glob in program.globals:
        module.add_global(glob.name, glob.size, glob.init)
    known = {f.name for f in program.functions}
    for fdef in program.functions:
        _FunctionLowerer(module, fdef, known).lower()
    return module


def compile_source(source: str, name: str = "module") -> Module:
    """Front door: MKC source text -> verified IR module."""
    from repro.ir.verify import verify_module

    from .parser import parse

    module = lower_program(parse(source), name)
    verify_module(module)
    return module
