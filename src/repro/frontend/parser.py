"""Recursive-descent parser for MKC."""

from __future__ import annotations

from . import ast
from .lexer import Token, tokenize


class ParseError(Exception):
    pass


#: binary operator precedence (higher binds tighter); && / || handled
#: separately for short-circuit lowering, ?: lowest.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, text: str) -> bool:
        token = self.peek()
        return token.text == text and token.kind in ("op", "keyword")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            token = self.peek()
            raise ParseError(
                f"line {token.line}: expected {text!r}, found {token.text!r}"
            )
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise ParseError(
                f"line {token.line}: expected identifier, found {token.text!r}"
            )
        return self.advance().text

    # -- top level -----------------------------------------------------------------

    def parse_program(self) -> ast.ProgramAST:
        program = ast.ProgramAST()
        while self.peek().kind != "eof":
            returns_value = self._parse_type()
            name = self.expect_ident()
            if self.check("("):
                program.functions.append(
                    self._parse_function(name, returns_value)
                )
            else:
                program.globals.append(self._parse_global(name))
        return program

    def _parse_type(self) -> bool:
        if self.accept("int"):
            return True
        if self.accept("void"):
            return False
        token = self.peek()
        raise ParseError(
            f"line {token.line}: expected 'int' or 'void', found {token.text!r}"
        )

    def _parse_global(self, name: str) -> ast.GlobalArray:
        self.expect("[")
        size_tok = self.advance()
        if size_tok.kind != "int_lit":
            raise ParseError(f"line {size_tok.line}: global size must be constant")
        size = int(size_tok.text, 0)
        self.expect("]")
        init: list[int] = []
        if self.accept("="):
            self.expect("{")
            while not self.check("}"):
                init.append(self._parse_const_int())
                if not self.accept(","):
                    break
            self.expect("}")
        self.expect(";")
        return ast.GlobalArray(name, size, init)

    def _parse_const_int(self) -> int:
        negative = self.accept("-")
        token = self.advance()
        if token.kind != "int_lit":
            raise ParseError(f"line {token.line}: expected integer constant")
        value = int(token.text, 0)
        return -value if negative else value

    def _parse_function(self, name: str, returns_value: bool) -> ast.FunctionDef:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.check(")"):
            if self.accept("void"):
                pass
            else:
                while True:
                    self.expect("int")
                    pointer = self.accept("*")
                    params.append(ast.Param(self.expect_ident(), pointer))
                    if not self.accept(","):
                        break
        self.expect(")")
        body = self._parse_block()
        return ast.FunctionDef(name, params, body, returns_value)

    # -- statements --------------------------------------------------------------------

    def _parse_body(self) -> list[ast.Stmt]:
        """A braced block or a single statement (loop/if bodies)."""
        if self.check("{"):
            return self._parse_block()
        return [self._parse_statement()]

    def _parse_block(self) -> list[ast.Stmt]:
        self.expect("{")
        stmts: list[ast.Stmt] = []
        while not self.accept("}"):
            stmts.append(self._parse_statement())
        return stmts

    def _parse_statement(self) -> ast.Stmt:
        if self.check("{"):
            # flatten nested blocks into an If(1){...}? keep simple: an
            # anonymous block behaves like if(1)
            return ast.If(ast.IntLit(1), self._parse_block())
        if self.accept("int"):
            return self._parse_declaration()
        if self.accept("if"):
            return self._parse_if()
        if self.accept("while"):
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            return ast.While(cond, self._parse_body())
        if self.accept("do"):
            body = self._parse_body()
            self.expect("while")
            self.expect("(")
            cond = self.parse_expression()
            self.expect(")")
            self.expect(";")
            return ast.DoWhile(body, cond)
        if self.accept("for"):
            return self._parse_for()
        if self.accept("return"):
            value = None
            if not self.check(";"):
                value = self.parse_expression()
            self.expect(";")
            return ast.Return(value)
        if self.accept("break"):
            self.expect(";")
            return ast.Break()
        if self.accept("continue"):
            self.expect(";")
            return ast.Continue()
        stmt = self._parse_simple_statement()
        self.expect(";")
        return stmt

    def _parse_declaration(self) -> ast.Stmt:
        name = self.expect_ident()
        if self.accept("["):
            size_tok = self.advance()
            if size_tok.kind != "int_lit":
                raise ParseError(
                    f"line {size_tok.line}: local array size must be constant"
                )
            self.expect("]")
            init_list = None
            if self.accept("="):
                self.expect("{")
                init_list = []
                while not self.check("}"):
                    init_list.append(self._parse_const_int())
                    if not self.accept(","):
                        break
                self.expect("}")
            self.expect(";")
            return ast.Declare(name, int(size_tok.text, 0), None, init_list)
        init = None
        if self.accept("="):
            init = self.parse_expression()
        self.expect(";")
        return ast.Declare(name, None, init)

    def _parse_if(self) -> ast.If:
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then = self._parse_body()
        other: list[ast.Stmt] = []
        if self.accept("else"):
            if self.accept("if"):
                other = [self._parse_if()]
            else:
                other = self._parse_body()
        return ast.If(cond, then, other)

    def _parse_for(self) -> ast.For:
        self.expect("(")
        init = None
        if not self.check(";"):
            if self.accept("int"):
                init = self._parse_declaration()
                return self._parse_for_rest(init)
            init = self._parse_simple_statement()
        self.expect(";")
        return self._parse_for_rest(init)

    def _parse_for_rest(self, init) -> ast.For:
        cond = None
        if not self.check(";"):
            cond = self.parse_expression()
        self.expect(";")
        update = None
        if not self.check(")"):
            update = self._parse_simple_statement()
        self.expect(")")
        return ast.For(init, cond, update, self._parse_body())

    def _parse_simple_statement(self) -> ast.Stmt:
        """Assignment, increment/decrement, or expression statement."""
        expr = self.parse_expression()
        token = self.peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.advance()
            value = self.parse_expression()
            if not isinstance(expr, (ast.Name, ast.Index)):
                raise ParseError(
                    f"line {token.line}: assignment target must be a "
                    "variable or array element"
                )
            return ast.Assign(expr, token.text, value)
        return ast.ExprStmt(expr)

    # -- expressions -----------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.accept("?"):
            then = self.parse_expression()
            self.expect(":")
            other = self._parse_ternary()
            return ast.Ternary(cond, then, other)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            prec = _PRECEDENCE.get(token.text) if token.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self._parse_binary(prec + 1)
            if token.text in ("&&", "||"):
                left = ast.Logical(token.text, left, right)
            else:
                left = ast.Binary(token.text, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "!", "~"):
            self.advance()
            return ast.Unary(token.text, self._parse_unary())
        if token.kind == "op" and token.text in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            if not isinstance(target, (ast.Name, ast.Index)):
                raise ParseError(f"line {token.line}: bad ++/-- target")
            return ast.IncDec(target, token.text, prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self.accept("["):
                index = self.parse_expression()
                self.expect("]")
                expr = ast.Index(expr, index)
                continue
            token = self.peek()
            if token.kind == "op" and token.text in ("++", "--"):
                if not isinstance(expr, (ast.Name, ast.Index)):
                    raise ParseError(f"line {token.line}: bad ++/-- target")
                self.advance()
                expr = ast.IncDec(expr, token.text, prefix=False)
                continue
            return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "int_lit":
            self.advance()
            return ast.IntLit(int(token.text, 0))
        if token.kind == "ident":
            name = self.advance().text
            if self.accept("("):
                args: list[ast.Expr] = []
                if not self.check(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                return ast.Call(name, args)
            return ast.Name(name)
        if self.accept("("):
            expr = self.parse_expression()
            self.expect(")")
            return expr
        raise ParseError(
            f"line {token.line}: unexpected token {token.text!r}"
        )


def parse(source: str) -> ast.ProgramAST:
    """Parse MKC source text into an AST."""
    return Parser(tokenize(source)).parse_program()
