"""MKC ("media kernel C") frontend: the language the benchmark programs
are written in.  See :mod:`repro.frontend.lower` for lowering conventions."""

from .lexer import LexError, Token, tokenize
from .lower import INTRINSICS, LowerError, compile_source, lower_program
from .parser import ParseError, parse

__all__ = [
    "INTRINSICS",
    "LexError",
    "LowerError",
    "ParseError",
    "Token",
    "compile_source",
    "lower_program",
    "parse",
    "tokenize",
]
