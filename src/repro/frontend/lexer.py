"""Lexer for MKC ("media kernel C"), the benchmark source language.

MKC is the C subset the paper's benchmarks actually need: ``int`` scalars
and word arrays, functions, the full statement/expression core, and the
DSP intrinsics (saturating arithmetic, clip, abs, min/max) that IMPACT
provides through intrinsic emulation.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "int", "void", "if", "else", "while", "do", "for", "return",
    "break", "continue",
}

#: multi-character operators, longest first
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str        # "int_lit" | "ident" | "keyword" | "op" | "eof"
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class LexError(Exception):
    pass


def tokenize(source: str) -> list[Token]:
    """Tokenize MKC source; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(message: str) -> LexError:
        return LexError(f"line {line}:{col}: {message}")

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise error("unterminated comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            if source.startswith(("0x", "0X"), i):
                i += 2
                while i < n and source[i] in "0123456789abcdefABCDEF":
                    i += 1
                if i == start + 2:
                    raise error("malformed hex literal")
            else:
                while i < n and source[i].isdigit():
                    i += 1
            text = source[start:i]
            tokens.append(Token("int_lit", text, line, col))
            col += i - start
            continue
        if ch == "'":
            if i + 2 < n and source[i + 2] == "'" and source[i + 1] != "\\":
                tokens.append(Token("int_lit", str(ord(source[i + 1])), line, col))
                i += 3
                col += 3
                continue
            raise error("malformed character literal")
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            col += i - start
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, col))
    return tokens
