"""Abstract syntax tree for MKC."""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions ------------------------------------------------------------------


@dataclass
class IntLit:
    value: int


@dataclass
class Name:
    ident: str


@dataclass
class Index:
    base: "Expr"
    index: "Expr"


@dataclass
class Unary:
    op: str           # "-", "!", "~"
    operand: "Expr"


@dataclass
class Binary:
    op: str           # arithmetic/comparison/bitwise; no short-circuit here
    left: "Expr"
    right: "Expr"


@dataclass
class Logical:
    op: str           # "&&" or "||": short-circuit semantics
    left: "Expr"
    right: "Expr"


@dataclass
class Ternary:
    cond: "Expr"
    then: "Expr"
    other: "Expr"


@dataclass
class Call:
    callee: str
    args: list["Expr"]


@dataclass
class IncDec:
    """``x++`` / ``--x`` used as an expression; value semantics follow C."""

    target: "Expr"    # Name or Index
    op: str           # "++" or "--"
    prefix: bool


Expr = (IntLit | Name | Index | Unary | Binary | Logical | Ternary | Call
        | IncDec)


# -- statements ---------------------------------------------------------------------


@dataclass
class Declare:
    name: str
    size: int | None           # None: scalar; int: local array of words
    init: Expr | None
    init_list: list[int] | None = None


@dataclass
class Assign:
    target: Expr               # Name or Index
    op: str                    # "=", "+=", ...
    value: Expr


@dataclass
class ExprStmt:
    expr: Expr


@dataclass
class If:
    cond: Expr
    then: list["Stmt"]
    other: list["Stmt"] = field(default_factory=list)


@dataclass
class While:
    cond: Expr
    body: list["Stmt"]


@dataclass
class DoWhile:
    body: list["Stmt"]
    cond: Expr


@dataclass
class For:
    init: "Stmt | None"
    cond: Expr | None
    update: "Stmt | None"
    body: list["Stmt"]


@dataclass
class Return:
    value: Expr | None


@dataclass
class Break:
    pass


@dataclass
class Continue:
    pass


Stmt = (Declare | Assign | ExprStmt | If | While | DoWhile | For | Return
        | Break | Continue)


# -- top level --------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    pointer: bool = False      # "int *p": an address-valued int


@dataclass
class FunctionDef:
    name: str
    params: list[Param]
    body: list[Stmt]
    returns_value: bool


@dataclass
class GlobalArray:
    name: str
    size: int
    init: list[int] = field(default_factory=list)


@dataclass
class ProgramAST:
    globals: list[GlobalArray] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
