"""Predicate promotion: removing guards from safely-speculable operations.

Section 4.3: "One technique that helps ... is predicate promotion, the
removal of a guard from an operation that may safely be executed when the
predicate is false (although the result is unneeded).  By removing the
predicates from all but those that absolutely require guards, the compiler
reduces the stress on this critical resource."

An operation ``(p) op d = ...`` may be promoted when executing it with
``p`` false cannot change an observable value:

* the op must be speculation-safe (never stores, branches, or predicate
  defines; potentially-excepting ops use the architecture's speculative
  form, Section 7);
* every read of ``d`` reachable before an *unconditional* redefinition must
  itself be guarded by a predicate that implies ``p`` (so on ``!p``
  executions the polluted value is never consumed);
* ``d`` must not escape the block while possibly polluted: either it is
  unconditionally redefined before block end, or it is not live out.

Promotion shortens predicate live ranges and directly reduces the number of
predicate-*sensitive* operations — the quantity the slot-based predication
scheme of Section 4.2 cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import liveness, op_unconditional_writes
from repro.analysis.predrel import PredicateRelations
from repro.analysis.predweb import PredicateWeb
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import NON_SPECULABLE, POTENTIALLY_EXCEPTING, Opcode


@dataclass
class PromotionStats:
    promoted: int = 0
    speculative_forms: int = 0


def promote_block(block: BasicBlock, func: Function,
                  live_out=None, live_info=None,
                  web: PredicateWeb | None = None) -> PromotionStats:
    """Promote guards within one (hyper)block.

    Implication between a consumer's guard and the promoted guard is
    first tried against block-local :class:`PredicateRelations`; when
    that fails, the global predicate ``web`` (built on demand) may still
    prove it, with each guard's site set pinned at its operation's
    position so a mid-block redefinition cannot conflate two webs.
    """
    if live_info is None:
        live_info = liveness(func)
    if live_out is None:
        live_out = live_info.live_out[block.label]
    exit_live = _exit_liveness(block, func, live_info)
    stats = PromotionStats()
    relations = PredicateRelations(block)
    ctx = _WebContext(func, block, web)

    changed = True
    while changed:
        changed = False
        for i, op in enumerate(block.ops):
            if op.guard is None:
                continue
            if op.opcode in NON_SPECULABLE or op.is_branch:
                continue
            if not op.dests or any(d.is_predicate for d in op.dests):
                continue
            if _promotable(block, i, op, relations, live_out, exit_live, ctx):
                guard = op.guard
                op.guard = None
                if op.opcode in POTENTIALLY_EXCEPTING:
                    op.attrs["speculative"] = True
                    stats.speculative_forms += 1
                stats.promoted += 1
                changed = True
        # relations unaffected: promotion does not touch predicate defines
    return stats


def _exit_liveness(block, func, live_info) -> dict[int, set]:
    """Live-in sets of each mid-block side exit's target, by op index."""
    result: dict[int, set] = {}
    for i, op in enumerate(block.ops):
        if op.is_branch and op.target is not None and func.has_block(op.target):
            if op.target != block.label:
                result[i] = live_info.live_in.get(op.target, set())
    return result


class _WebContext:
    """Lazy per-block view of the global predicate web.

    The web is only solved when block-local relations fail to prove an
    implication; promotion never touches predicate defines, so the
    solved states stay valid across the promote/retry fixpoint loop.
    """

    def __init__(self, func, block, web=None):
        self._func = func
        self._block = block
        self._web = web
        self._points = None

    def implies_execution(self, consumer_index, consumer_guard,
                          def_index, guard) -> bool:
        if consumer_guard is None:
            return False
        if self._points is None:
            if self._web is None:
                self._web = PredicateWeb(self._func)
            self._points = self._web.points(self._block.label)
        pts = self._points
        return pts[consumer_index].implies_sites(
            pts[consumer_index].sites(consumer_guard),
            pts[def_index].sites(guard))


def _promotable(block, index, op, relations: PredicateRelations, live_out,
                exit_live, ctx: _WebContext) -> bool:
    guard = op.guard
    for dest in op.dests:
        killed = False
        for j, later in enumerate(block.ops[index + 1:], start=index + 1):
            if dest in later.reads():
                if not relations.implies_execution(later.guard, guard) \
                        and not ctx.implies_execution(j, later.guard,
                                                      index, guard):
                    return False
            # a side exit taken before the kill exposes the polluted value
            if j in exit_live and dest in exit_live[j]:
                return False
            if dest in op_unconditional_writes(later):
                killed = True
                break
        if not killed and dest in live_out:
            return False
    return True


def promote_function(func: Function) -> PromotionStats:
    """Promote across all hyperblocks of ``func``."""
    info = liveness(func)
    total = PromotionStats()
    web = PredicateWeb(func)
    for block in func.blocks:
        if not block.hyperblock:
            continue
        got = promote_block(block, func, info.live_out[block.label], info,
                            web=web)
        total.promoted += got.promoted
        total.speculative_forms += got.speculative_forms
    return total


def sensitivity_stats(func: Function) -> tuple[int, int]:
    """(guarded ops, total ops) over hyperblocks — the static fraction of
    operations that remain sensitive to predicates after promotion."""
    guarded = 0
    total = 0
    for block in func.blocks:
        if not block.hyperblock:
            continue
        for op in block.ops:
            if op.opcode == Opcode.NOP:
                continue
            total += 1
            if op.guard is not None:
                guarded += 1
    return guarded, total
