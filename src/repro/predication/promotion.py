"""Predicate promotion: removing guards from safely-speculable operations.

Section 4.3: "One technique that helps ... is predicate promotion, the
removal of a guard from an operation that may safely be executed when the
predicate is false (although the result is unneeded).  By removing the
predicates from all but those that absolutely require guards, the compiler
reduces the stress on this critical resource."

An operation ``(p) op d = ...`` may be promoted when executing it with
``p`` false cannot change an observable value:

* the op must be speculation-safe (never stores, branches, or predicate
  defines; potentially-excepting ops use the architecture's speculative
  form, Section 7);
* every read of ``d`` reachable before an *unconditional* redefinition must
  itself be guarded by a predicate that implies ``p`` (so on ``!p``
  executions the polluted value is never consumed);
* ``d`` must not escape the block while possibly polluted: either it is
  unconditionally redefined before block end, or it is not live out.

Promotion shortens predicate live ranges and directly reduces the number of
predicate-*sensitive* operations — the quantity the slot-based predication
scheme of Section 4.2 cares about.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.liveness import liveness, op_unconditional_writes
from repro.analysis.predrel import PredicateRelations
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import NON_SPECULABLE, POTENTIALLY_EXCEPTING, Opcode


@dataclass
class PromotionStats:
    promoted: int = 0
    speculative_forms: int = 0


def promote_block(block: BasicBlock, func: Function,
                  live_out=None, live_info=None) -> PromotionStats:
    """Promote guards within one (hyper)block."""
    if live_info is None:
        live_info = liveness(func)
    if live_out is None:
        live_out = live_info.live_out[block.label]
    exit_live = _exit_liveness(block, func, live_info)
    stats = PromotionStats()
    relations = PredicateRelations(block)

    changed = True
    while changed:
        changed = False
        for i, op in enumerate(block.ops):
            if op.guard is None:
                continue
            if op.opcode in NON_SPECULABLE or op.is_branch:
                continue
            if not op.dests or any(d.is_predicate for d in op.dests):
                continue
            if _promotable(block, i, op, relations, live_out, exit_live):
                guard = op.guard
                op.guard = None
                if op.opcode in POTENTIALLY_EXCEPTING:
                    op.attrs["speculative"] = True
                    stats.speculative_forms += 1
                stats.promoted += 1
                changed = True
        # relations unaffected: promotion does not touch predicate defines
    return stats


def _exit_liveness(block, func, live_info) -> dict[int, set]:
    """Live-in sets of each mid-block side exit's target, by op index."""
    result: dict[int, set] = {}
    for i, op in enumerate(block.ops):
        if op.is_branch and op.target is not None and func.has_block(op.target):
            if op.target != block.label:
                result[i] = live_info.live_in.get(op.target, set())
    return result


def _promotable(block, index, op, relations: PredicateRelations, live_out,
                exit_live) -> bool:
    guard = op.guard
    for dest in op.dests:
        killed = False
        for j, later in enumerate(block.ops[index + 1:], start=index + 1):
            if dest in later.reads():
                if not relations.implies_execution(later.guard, guard):
                    return False
            # a side exit taken before the kill exposes the polluted value
            if j in exit_live and dest in exit_live[j]:
                return False
            if dest in op_unconditional_writes(later):
                killed = True
                break
        if not killed and dest in live_out:
            return False
    return True


def promote_function(func: Function) -> PromotionStats:
    """Promote across all hyperblocks of ``func``."""
    info = liveness(func)
    total = PromotionStats()
    for block in func.blocks:
        if not block.hyperblock:
            continue
        got = promote_block(block, func, info.live_out[block.label], info)
        total.promoted += got.promoted
        total.speculative_forms += got.speculative_forms
    return total


def sensitivity_stats(func: Function) -> tuple[int, int]:
    """(guarded ops, total ops) over hyperblocks — the static fraction of
    operations that remain sensitive to predicates after promotion."""
    guarded = 0
    total = 0
    for block in func.blocks:
        if not block.hyperblock:
            continue
        for op in block.ops:
            if op.opcode == Opcode.NOP:
                continue
            total += 1
            if op.guard is not None:
                guarded += 1
    return guarded, total
