"""Hyperblock-formation driver: pick regions and apply if-conversion.

Strategy follows Section 3 of the paper: loop bodies are the regions that
matter, because the loop buffer only holds simple loops.  Innermost loops
whose bodies are acyclic (after peeling/collapsing has dissolved any nests)
are if-converted whole; acyclic *hammocks* in non-loop code can optionally
be converted too, which shortens non-loop fetch but does not affect
bufferability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfgview import CFGView
from repro.analysis.loops import find_loops
from repro.analysis.profile import Profile
from repro.ir.function import Function
from repro.opt.simplify_cfg import simplify_cfg, split_at_branches

from .ifconvert import (
    HyperblockInfo,
    IfConversionError,
    check_region_convertible,
    if_convert_region,
)

#: conversion is abandoned for regions that would exceed this many ops;
#: far beyond buffer capacity a hyperblock only hurts the schedule.
DEFAULT_MAX_REGION_OPS = 512


@dataclass
class FormationStats:
    converted: list[HyperblockInfo] = field(default_factory=list)
    rejected: dict[str, str] = field(default_factory=dict)

    @property
    def loops_converted(self) -> int:
        return len(self.converted)


def _region_op_count(func: Function, body: set[str]) -> int:
    return sum(len(func.block(label).ops) for label in body)


def form_loop_hyperblocks(
    func: Function,
    profile: Profile | None = None,
    max_region_ops: int = DEFAULT_MAX_REGION_OPS,
) -> FormationStats:
    """If-convert every convertible loop body of ``func``.

    Loops are visited innermost-first; a multi-block loop whose body is an
    acyclic single-entry region (and free of calls) collapses into one
    hyperblock.  Loops with remaining inner loops are skipped — peeling or
    collapsing must dissolve the nest first.
    """
    stats = FormationStats()
    split_at_branches(func)
    progress = True
    while progress:
        progress = False
        cfg = CFGView(func)
        loops = find_loops(func, cfg)
        # innermost (deepest) first
        for loop in sorted(loops, key=lambda lp: -lp.depth):
            if len(loop.body) < 2:
                continue  # already a simple loop
            if loop.children:
                stats.rejected[loop.header] = "contains inner loop"
                continue
            if _region_op_count(func, loop.body) > max_region_ops:
                stats.rejected[loop.header] = "region too large"
                continue
            reason = check_region_convertible(func, loop.header, loop.body, cfg)
            if reason is not None:
                stats.rejected[loop.header] = reason
                continue
            try:
                info = if_convert_region(func, loop.header, loop.body, cfg)
            except IfConversionError as exc:  # race with stale CFG view
                stats.rejected[loop.header] = str(exc)
                continue
            stats.converted.append(info)
            stats.rejected.pop(loop.header, None)
            progress = True
            break  # CFG changed: rebuild analyses
    simplify_cfg(func)
    return stats


def form_hammock_hyperblocks(
    func: Function,
    profile: Profile | None = None,
    max_region_ops: int = DEFAULT_MAX_REGION_OPS,
) -> FormationStats:
    """If-convert acyclic hammock/diamond regions outside loops.

    A candidate region is a block ``B`` with a conditional terminator whose
    two successor subgraphs re-join at a common block ``J`` such that every
    block between ``B`` and ``J`` is dominated by ``B`` and reaches only
    ``J``-or-internal blocks.  We use the simplest profitable subset:
    diamonds and triangles (the shapes partial predication cannot express
    beyond, per Section 4).
    """
    from repro.analysis.dominators import dominator_tree, postdominator_tree

    stats = FormationStats()
    split_at_branches(func)
    progress = True
    while progress:
        progress = False
        cfg = CFGView(func)
        loops = find_loops(func, cfg)
        loop_blocks: set[str] = set()
        for loop in loops:
            loop_blocks |= loop.body
        dom = dominator_tree(cfg)
        pdom = postdominator_tree(cfg)
        for block in func.blocks:
            label = block.label
            if label in loop_blocks:
                continue
            succs = cfg.succs.get(label, [])
            if len(succs) != 2:
                continue
            join = _common_join(cfg, pdom, label, succs)
            if join is None:
                continue
            body = _region_between(cfg, label, join)
            if body is None or len(body) < 2:
                continue
            if body & loop_blocks:
                continue
            if _region_op_count(func, body) > max_region_ops:
                continue
            if not all(dom.dominates(label, member) for member in body):
                continue
            if check_region_convertible(func, label, body, cfg) is not None:
                continue
            try:
                info = if_convert_region(func, label, body, cfg)
            except IfConversionError:
                continue
            stats.converted.append(info)
            progress = True
            break
    simplify_cfg(func)
    return stats


def _common_join(cfg: CFGView, pdom, label: str, succs: list[str]) -> str | None:
    """Immediate postdominator of ``label`` if it postdominates both arms."""
    node = pdom.idom.get(label)
    if node in (None, "<exit>"):
        return None
    return node


def _region_between(cfg: CFGView, entry: str, join: str) -> set[str] | None:
    """Blocks on paths from ``entry`` to ``join`` (exclusive of ``join``)."""
    body: set[str] = set()
    stack = [entry]
    while stack:
        label = stack.pop()
        if label == join or label in body:
            continue
        body.add(label)
        for succ in cfg.succs[label]:
            if succ == join:
                continue
            if succ not in cfg.succs:
                return None
            stack.append(succ)
        if not cfg.succs[label] and label != join:
            # a RET inside the region: allowed as a guarded side exit
            continue
    return body
