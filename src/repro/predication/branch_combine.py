"""Branch combining: many infrequent side exits -> one summary jump.

Section 3: "hyperblock side exit branches are numerous but very
infrequently taken.  In these instances, ... branch combining transforms
several branches into a single predicated jump, guarded by a 'summary
predicate.'  The summary predicate, computed using parallel or compare
types, is set to 1 when any exit from the loop is required; when any one of
these branches would have taken, a summary jump directs execution to a
'decode block' where the originally-desired control flow direction is
discerned."

Safety relies on the predicate structure if-conversion builds: when a side
exit's condition holds on the active path, every subsequent operation of
the hyperblock is guarded by a predicate that is false on that path, so the
registers consulted by the decode block's re-tests are unchanged between
the original exit point and the summary jump.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.profile import Profile
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.registers import Imm

#: exits taken more often than this fraction of their executions are left
#: as real branches (combining them would *increase* taken-branch work).
DEFAULT_TAKEN_THRESHOLD = 0.05

#: combining pays for its decode block only with at least this many exits.
DEFAULT_MIN_EXITS = 2


@dataclass
class CombineStats:
    hyperblocks: int = 0
    branches_combined: int = 0
    decode_blocks: list[str] = field(default_factory=list)


def combine_branches(
    func: Function,
    profile: Profile | None = None,
    taken_threshold: float = DEFAULT_TAKEN_THRESHOLD,
    min_exits: int = DEFAULT_MIN_EXITS,
) -> CombineStats:
    """Apply branch combining to every hyperblock of ``func``."""
    stats = CombineStats()
    for block in list(func.blocks):
        if not block.hyperblock:
            continue
        combined = _combine_in_block(func, block, profile,
                                     taken_threshold, min_exits)
        if combined:
            stats.hyperblocks += 1
            stats.branches_combined += combined
            stats.decode_blocks.append(f"{block.label}_decode")
    return stats


def _combinable_exits(
    func: Function, block: BasicBlock, profile: Profile | None,
    taken_threshold: float,
) -> list[int]:
    """Indices of side-exit BR ops cold enough to combine.

    The final transfer op is never combined (it is the loop-back branch or
    the fall-out path), and only plain conditional branches qualify.
    """
    indices = []
    for i, op in enumerate(block.ops):
        if i == len(block.ops) - 1:
            continue
        if op.opcode != Opcode.BR:
            continue
        if op.target == block.label:
            continue  # loop-back branch
        if profile is not None:
            ratio = profile.taken_ratio(func.name, op.uid)
            if ratio > taken_threshold:
                continue
        indices.append(i)
    return indices


def _combine_in_block(
    func: Function, block: BasicBlock, profile: Profile | None,
    taken_threshold: float, min_exits: int,
) -> int:
    exits = _combinable_exits(func, block, profile, taken_threshold)
    if len(exits) < min_exits:
        return 0

    summary = func.new_pred()
    decode_label = func.new_label(f"{block.label}_decode")
    decode = func.add_block(decode_label)

    # replace each exit branch with an or-type contribution to the summary
    recorded: list[Operation] = []
    for index in exits:
        branch = block.ops[index]
        recorded.append(branch)
        block.ops[index] = Operation(
            Opcode.PRED_DEF, [summary], list(branch.srcs), branch.guard,
            {"cmp": branch.attrs["cmp"], "ptypes": ["ot"]},
        )

    # clear the summary at the top of the hyperblock
    block.insert(0, Operation(Opcode.PRED_SET, [summary], [Imm(0)]))

    # summary jump: before the block's trailing run of transfer ops (the
    # loop-back branch / fall-out jump), so a deferred exit is never lost
    # to the next iteration
    jump = Operation(Opcode.JUMP, [], [], summary, {"target": decode_label})
    insert_at = len(block.ops)
    while insert_at > 0 and block.ops[insert_at - 1].is_branch:
        insert_at -= 1
    block.insert(insert_at, jump)

    # decode block: re-discern the original direction, in original order
    for branch in recorded:
        decode.append(
            Operation(Opcode.BR, [], list(branch.srcs), branch.guard,
                      {"cmp": branch.attrs["cmp"], "target": branch.target})
        )
    # unreachable fallback (the summary fired, so one re-test must take);
    # keeps the decode block well-terminated for the verifier
    decode.append(Operation(Opcode.JUMP, attrs={"target": recorded[-1].target}))
    return len(exits)
