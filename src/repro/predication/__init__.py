"""Predication: if-conversion, branch combining, promotion, coloring,
predication statistics, and the paper's slot-based predication scheme.

Table 2 semantics (the predicate-define truth table) live in
:mod:`repro.ir.preddef` next to the IR and are re-exported here.
"""

from repro.ir.preddef import always_writes, may_write_one, may_write_zero, pred_update

from .branch_combine import CombineStats, combine_branches
from .coloring import (
    LiveRange,
    PredicateSpillRequired,
    apply_coloring,
    color_predicates,
    max_live_predicates,
    predicate_live_ranges,
)
from .hyperblock import (
    FormationStats,
    form_hammock_hyperblocks,
    form_loop_hyperblocks,
)
from .ifconvert import (
    HyperblockInfo,
    IfConversionError,
    check_region_convertible,
    if_convert_region,
)
from .promotion import (
    PromotionStats,
    promote_block,
    promote_function,
    sensitivity_stats,
)
from .stats import (
    DefineStat,
    LoopOverlapStat,
    PredicationStats,
    collect_function_stats,
    collect_module_stats,
)

__all__ = [
    "CombineStats",
    "DefineStat",
    "FormationStats",
    "HyperblockInfo",
    "IfConversionError",
    "LiveRange",
    "LoopOverlapStat",
    "PredicateSpillRequired",
    "PredicationStats",
    "PromotionStats",
    "always_writes",
    "apply_coloring",
    "check_region_convertible",
    "collect_function_stats",
    "collect_module_stats",
    "color_predicates",
    "combine_branches",
    "form_hammock_hyperblocks",
    "form_loop_hyperblocks",
    "if_convert_region",
    "max_live_predicates",
    "may_write_one",
    "may_write_zero",
    "pred_update",
    "predicate_live_ranges",
    "promote_block",
    "promote_function",
    "sensitivity_stats",
]
