"""If-conversion: turning single-entry acyclic regions into hyperblocks.

This is the transformation at the heart of the paper (Park-Schlansker
if-conversion [7] forming hyperblocks [13]): a region of control flow is
replaced by one straight-line block in which every operation is guarded by
the *path predicate* of its original block.  Loop bodies whose internal
control flow is fully if-converted become *simple loops* eligible for the
loop buffer.

Predicate construction follows the classic recipe:

* the region entry executes unconditionally (guard ``None``);
* a block with a single incoming edge receives an unconditional-type
  (``ut``/``uf``) predicate computed by the branch that feeds it;
* a block with several incoming edges (a join) receives an or-type
  (``ot``/``of``) predicate: cleared at the top of the hyperblock, then
  accumulated by one define per incoming edge — exactly the two define
  classes the paper notes are required for if-conversion (Section 4).

Control leaving the region stays as *guarded* branches (hyperblock side
exits); back edges to the region entry become the loop-back branch of the
resulting simple loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.cfgview import CFGView
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.registers import Imm, VReg


class IfConversionError(Exception):
    """The region cannot legally be if-converted."""


@dataclass
class HyperblockInfo:
    """Result of one successful if-conversion."""

    label: str
    blocks_merged: int
    pred_defines: int
    predicates_used: int
    guarded_ops: int
    side_exits: int


@dataclass
class _EdgeInfo:
    src: str
    dst: str            # target label (internal, external, or entry/back edge)
    cond: str | None    # comparison test, None for unconditional edges
    srcs: list = field(default_factory=list)  # comparison operands
    taken: bool = True  # condition sense: taken side or fallthrough side


def check_region_convertible(
    func: Function, entry: str, body: set[str], cfg: CFGView
) -> str | None:
    """Return a reason string when the region is NOT convertible, else None.

    Requirements: single entry; internal control acyclic apart from back
    edges into the entry; no subroutine calls ("loop regions may not contain
    calls to subroutines"); no pre-guarded operations (stacked predication
    would require guard conjunction hardware we do not model); terminators
    limited to plain jumps / conditional branches / returns.
    """
    for label in body:
        if label != entry:
            for pred in cfg.preds[label]:
                if pred not in body:
                    return f"side entry into {label} from {pred}"
        block = func.block(label)
        for i, op in enumerate(block.ops):
            if op.opcode == Opcode.CALL:
                return f"call in {label}"
            if op.guard is not None:
                return f"pre-guarded op in {label}"
            if op.opcode in (Opcode.BR_CLOOP, Opcode.BR_WLOOP, Opcode.CLOOP_SET,
                             Opcode.REC_CLOOP, Opcode.REC_WLOOP,
                             Opcode.EXEC_CLOOP, Opcode.EXEC_WLOOP):
                return f"loop-control op in {label}"
            if op.is_branch and i != len(block.ops) - 1:
                # allow the canonical BR+JUMP two-op ending (explicit else)
                last = block.ops[-1]
                if not (i == len(block.ops) - 2 and op.opcode == Opcode.BR
                        and last.opcode == Opcode.JUMP):
                    return f"mid-block branch in {label}"
    if _topo_order(func, entry, body, cfg) is None:
        return "internal cycle (nested loop not yet transformed)"
    return None


def _topo_order(
    func: Function, entry: str, body: set[str], cfg: CFGView
) -> list[str] | None:
    """Topological order of the region ignoring edges into the entry
    (back edges); None when the remaining subgraph is cyclic."""
    state: dict[str, int] = {}
    order: list[str] = []

    def visit(label: str) -> bool:
        state[label] = 1
        for succ in cfg.succs[label]:
            if succ not in body or succ == entry:
                continue
            mark = state.get(succ, 0)
            if mark == 1:
                return False
            if mark == 0 and not visit(succ):
                return False
        state[label] = 2
        order.append(label)
        return True

    if not visit(entry):
        return None
    if len(order) != len(body):
        # unreachable region blocks: exclude them by failing
        return None
    order.reverse()
    return order


def _edges_of_block(func: Function, label: str, body: set[str]) -> list[_EdgeInfo]:
    """Outgoing edges of a region block, from its terminator + layout."""
    block = func.block(label)
    term = block.terminator
    edges: list[_EdgeInfo] = []
    idx = func.blocks.index(block)
    fall = func.blocks[idx + 1].label if idx + 1 < len(func.blocks) else None

    if term is None:
        if fall is not None:
            edges.append(_EdgeInfo(label, fall, None))
        return edges
    if term.opcode == Opcode.JUMP:
        if len(block.ops) >= 2 and block.ops[-2].opcode == Opcode.BR:
            # BR + JUMP pair: the jump is the explicit not-taken edge
            br = block.ops[-2]
            edges.append(
                _EdgeInfo(label, br.target, br.attrs["cmp"],
                          list(br.srcs), taken=True)
            )
            edges.append(
                _EdgeInfo(label, term.target, br.attrs["cmp"],
                          list(br.srcs), taken=False)
            )
            return edges
        edges.append(_EdgeInfo(label, term.target, None))
        return edges
    if term.opcode == Opcode.RET:
        return edges
    if term.opcode == Opcode.BR:
        edges.append(
            _EdgeInfo(label, term.target, term.attrs["cmp"],
                      list(term.srcs), taken=True)
        )
        if fall is not None:
            edges.append(
                _EdgeInfo(label, fall, term.attrs["cmp"],
                          list(term.srcs), taken=False)
            )
        return edges
    raise IfConversionError(f"unsupported terminator {term!r} in {label}")


def if_convert_region(
    func: Function, entry: str, body: set[str], cfg: CFGView | None = None
) -> HyperblockInfo:
    """If-convert the single-entry acyclic region ``body`` rooted at ``entry``.

    The region blocks are replaced by one hyperblock carrying ``entry``'s
    label (so external branches into the region stay valid).  Raises
    :class:`IfConversionError` when the region is not convertible.
    """
    if cfg is None:
        cfg = CFGView(func)
    reason = check_region_convertible(func, entry, body, cfg)
    if reason is not None:
        raise IfConversionError(reason)
    order = _topo_order(func, entry, body, cfg)
    assert order is not None and order[0] == entry

    # collect incoming internal edges per region block (back edges excluded)
    in_edges: dict[str, list[_EdgeInfo]] = {label: [] for label in body}
    out_edges: dict[str, list[_EdgeInfo]] = {}
    for label in order:
        edges = _edges_of_block(func, label, body)
        out_edges[label] = edges
        for edge in edges:
            if edge.dst in body and edge.dst != entry:
                in_edges[edge.dst].append(edge)

    # assign a guard predicate to every block
    block_pred: dict[str, VReg | None] = {entry: None}
    needs_init: list[VReg] = []
    stats_defines = 0

    for label in order[1:]:
        edges = in_edges[label]
        if not edges:
            raise IfConversionError(f"{label} unreachable within region")
        if len(edges) == 1 and edges[0].cond is None:
            # single unconditional in-edge: share the source's predicate
            block_pred[label] = block_pred[edges[0].src]
        else:
            pred = func.new_pred()
            block_pred[label] = pred
            if len(edges) > 1:
                needs_init.append(pred)

    # build the merged operation list
    merged: list[Operation] = []
    for pred in needs_init:
        merged.append(Operation(Opcode.PRED_SET, [pred], [Imm(0)]))

    guarded_ops = 0
    side_exits = 0
    predicates = set(needs_init)

    for label in order:
        block = func.block(label)
        pb = block_pred[label]
        term = block.terminator
        cond_br = None
        if term is not None and term.opcode == Opcode.BR:
            cond_br = term
            body_ops = block.ops[:-1]
        elif (term is not None and term.opcode == Opcode.JUMP
              and len(block.ops) >= 2 and block.ops[-2].opcode == Opcode.BR):
            cond_br = block.ops[-2]
            body_ops = block.ops[:-2]
        elif term is not None:
            body_ops = block.ops[:-1]
        else:
            body_ops = list(block.ops)

        for op in body_ops:
            new_op = op  # ops are moved, not copied: uids stay stable
            if pb is not None:
                new_op.guard = pb
                guarded_ops += 1
            merged.append(new_op)

        # now lower the terminator / fallthrough control
        edges = out_edges[label]
        if term is not None and term.opcode == Opcode.RET:
            term.guard = pb
            merged.append(term)
            side_exits += 1 if pb is not None else 0
            continue

        if cond_br is not None:
            term = cond_br
            taken = next(e for e in edges if e.taken)
            fall = next((e for e in edges if not e.taken), None)
            taken_internal = taken.dst in body and taken.dst != entry
            fall_internal = (fall is not None and fall.dst in body
                             and fall.dst != entry)

            # predicate contributions computed by this branch's condition
            dests: list[VReg] = []
            ptypes: list[str] = []
            if taken_internal:
                tpred = block_pred[taken.dst]
                assert tpred is not None
                dests.append(tpred)
                ptypes.append("ot" if len(in_edges[taken.dst]) > 1 else "ut")
                predicates.add(tpred)
            fall_pred_for_exit: VReg | None = None
            if fall_internal:
                fpred = block_pred[fall.dst]
                assert fpred is not None
                dests.append(fpred)
                ptypes.append("of" if len(in_edges[fall.dst]) > 1 else "uf")
                predicates.add(fpred)
            elif fall is not None and not taken_internal:
                # branch is kept: the not-taken exit can reuse guard pb
                pass
            elif fall is not None:
                # branch dissolves into a predicate; the fallthrough exit
                # needs its own guard predicate pb & !cond
                fall_pred_for_exit = func.new_pred()
                dests.append(fall_pred_for_exit)
                ptypes.append("uf")
                predicates.add(fall_pred_for_exit)

            if dests:
                merged.append(
                    Operation(Opcode.PRED_DEF, dests, list(term.srcs), pb,
                              {"cmp": term.attrs["cmp"], "ptypes": ptypes})
                )
                stats_defines += 1

            if not taken_internal:
                # keep the conditional branch (to the entry = loop-back, or
                # to an external block = side exit), guarded by pb
                kept = Operation(Opcode.BR, [], list(term.srcs), pb,
                                 {"cmp": term.attrs["cmp"],
                                  "target": taken.dst})
                merged.append(kept)
                side_exits += 1
            if fall is not None and not fall_internal:
                if fall_pred_for_exit is not None:
                    merged.append(
                        Operation(Opcode.JUMP, [], [], fall_pred_for_exit,
                                  {"target": fall.dst})
                    )
                else:
                    merged.append(
                        Operation(Opcode.JUMP, [], [], pb,
                                  {"target": fall.dst})
                    )
                side_exits += 1
            continue

        # unconditional jump or plain fallthrough
        if edges:
            edge = edges[0]
            internal = edge.dst in body and edge.dst != entry
            if internal:
                target_pred = block_pred[edge.dst]
                if len(in_edges[edge.dst]) > 1:
                    assert target_pred is not None
                    merged.append(
                        Operation(Opcode.PRED_DEF, [target_pred],
                                  [Imm(0), Imm(0)], pb,
                                  {"cmp": "eq", "ptypes": ["ot"]})
                    )
                    stats_defines += 1
                    predicates.add(target_pred)
                # single unconditional edge: predicate shared, nothing to do
            else:
                merged.append(
                    Operation(Opcode.JUMP, [], [], pb, {"target": edge.dst})
                )
                side_exits += 1

    # splice: remove region blocks, insert the hyperblock where the entry
    # will sit once the other region blocks are gone
    position = sum(
        1 for block in func.blocks[: func.block_index(entry)]
        if block.label not in body
    )
    for label in body:
        func.remove_block(label)
    hyper = BasicBlock(entry, merged)
    hyper.hyperblock = True
    func.adopt_block(hyper, index=position)
    _relax_trailing_exits(func, hyper)

    return HyperblockInfo(
        label=entry,
        blocks_merged=len(body),
        pred_defines=stats_defines,
        predicates_used=len(predicates),
        guarded_ops=guarded_ops,
        side_exits=side_exits,
    )


def _relax_trailing_exits(func: Function, block: BasicBlock) -> None:
    """Drop the guard of the block's final transfer operation(s).

    Every path through the converted region ends in some transfer op, so if
    control reaches the *last* transfer, none of the earlier ones fired and
    this must be the active path's transfer — its guard is necessarily
    true.  Dropping it restores the canonical simple-loop shape (an
    unguarded loop-back branch at the end) and lets redundant trailing
    jumps to the layout successor be deleted, exposing the fall-out exit.
    """
    while block.ops:
        last = block.ops[-1]
        if not last.is_branch:
            break
        if last.guard is not None:
            last.guard = None
        idx = func.blocks.index(block)
        if (
            last.opcode == Opcode.JUMP
            and idx + 1 < len(func.blocks)
            and last.target == func.blocks[idx + 1].label
        ):
            block.ops.pop()
            continue
        break
