"""Predicate live ranges, interference, and coloring to physical predicates.

Section 4.1: the benchmarks were "prepass- and modulo-scheduled given
infinite virtual predicate registers, and then colored to eight physical
predicates (no spilling of predicates was required)", and Figure 3(c)
shows that four simultaneously-live predicates cover 99% of dynamic loop
iterations.  This module computes the same quantities:

* per-block predicate live ranges (definition point to last consumer);
* the interference graph and a greedy coloring;
* the maximum number of simultaneously-live predicates (the Figure 3(c)
  metric).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.liveness import op_unconditional_writes
from repro.ir.block import BasicBlock
from repro.ir.registers import VReg


class PredicateSpillRequired(Exception):
    """More simultaneously-live predicates than physical registers."""


@dataclass
class LiveRange:
    reg: VReg
    start: int           # index of first define
    end: int             # index of last consumer
    defines: list[int] = field(default_factory=list)
    consumers: list[int] = field(default_factory=list)

    @property
    def duration(self) -> int:
        return max(0, self.end - self.start)

    def overlaps(self, other: "LiveRange") -> bool:
        return self.start < other.end and other.start < self.end


def predicate_live_ranges(block: BasicBlock) -> list[LiveRange]:
    """Live ranges of every predicate register used in ``block``.

    Positions are op indices; a range spans from its first definition to
    its last read.  A predicate live across the loop back edge (read before
    any unconditional definition) is treated as live for the whole block —
    if-converted loops recompute predicates each iteration, so this is rare
    and conservative.
    """
    ranges: dict[VReg, LiveRange] = {}
    defined: set[VReg] = set()
    whole_block: set[VReg] = set()

    for i, op in enumerate(block.ops):
        for reg in op.reads():
            if not reg.is_predicate:
                continue
            if reg not in ranges:
                ranges[reg] = LiveRange(reg, 0, i)
            rng = ranges[reg]
            rng.end = max(rng.end, i)
            rng.consumers.append(i)
            if reg not in defined:
                whole_block.add(reg)  # upward-exposed: loop-carried
        for reg in op.writes():
            if not reg.is_predicate:
                continue
            if reg not in ranges:
                ranges[reg] = LiveRange(reg, i, i)
            rng = ranges[reg]
            rng.defines.append(i)
            rng.start = min(rng.start, i)
            rng.end = max(rng.end, i)
            if reg in op_unconditional_writes(op):
                defined.add(reg)

    for reg in whole_block:
        ranges[reg].start = 0
        ranges[reg].end = len(block.ops)
    return sorted(ranges.values(), key=lambda r: (r.start, r.reg.index))


def max_live_predicates(block: BasicBlock) -> int:
    """Maximum number of simultaneously-live predicates in the block
    (the Figure 3(c) per-loop overlap metric)."""
    ranges = predicate_live_ranges(block)
    if not ranges:
        return 0
    points = sorted({r.start for r in ranges} | {r.end for r in ranges})
    best = 0
    for point in points:
        live = sum(1 for r in ranges if r.start <= point < r.end)
        best = max(best, live)
    # a predicate defined and consumed at adjacent ops still occupies a slot
    return max(best, 1)


def color_predicates(
    block: BasicBlock, physical: int = 8
) -> dict[VReg, int]:
    """Greedy interval coloring of the block's predicates.

    Returns virtual-predicate -> physical index.  Raises
    :class:`PredicateSpillRequired` when ``physical`` colors do not suffice
    (the paper reports this never happens with 8 in their benchmark set).
    """
    ranges = predicate_live_ranges(block)
    coloring: dict[VReg, int] = {}
    for rng in ranges:
        used = {
            coloring[other.reg]
            for other in ranges
            if other.reg in coloring and rng.overlaps(other)
        }
        for color in range(physical):
            if color not in used:
                coloring[rng.reg] = color
                break
        else:
            raise PredicateSpillRequired(
                f"{block.label}: predicate {rng.reg} needs a 9th color"
            )
    return coloring


def apply_coloring(block: BasicBlock, coloring: dict[VReg, int]) -> None:
    """Rewrite the block's predicate registers to their physical indices."""
    from repro.ir.registers import preg

    mapping = {virt: preg(phys) for virt, phys in coloring.items()}
    for op in block.ops:
        op.replace_reads({k: v for k, v in mapping.items()})
        op.replace_writes({k: v for k, v in mapping.items()})
