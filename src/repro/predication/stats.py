"""Predication-characteristics metrics (Figure 3 of the paper).

Three cumulative distributions over the benchmark set:

* **(a) consumers per predicate define** — how many guarded operations each
  predicate define feeds (static = per define instance, dynamic = weighted
  by execution count);
* **(b) predicate live-range duration** — ops (a stand-in for cycles prior
  to scheduling; the scheduled variant uses issue times) between a define
  and its range's last consumer;
* **(c) live-range overlap by loop** — simultaneously-live predicates per
  predicated loop, weighted by dynamic iterations.

These are the measurements that justify the slot-based scheme: defines
rarely feed more than a handful of consumers, and four predicates cover
almost all dynamic loop iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.profile import Profile
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.opcodes import Opcode
from repro.ir.registers import VReg

from .coloring import max_live_predicates, predicate_live_ranges


@dataclass
class DefineStat:
    """Per-define measurements for one predicate destination."""

    func: str
    block: str
    op_uid: int
    reg: VReg
    consumers: int
    duration: int
    weight: int  # dynamic executions of the define


@dataclass
class LoopOverlapStat:
    func: str
    block: str
    max_live: int
    iterations: int


@dataclass
class PredicationStats:
    defines: list[DefineStat] = field(default_factory=list)
    loops: list[LoopOverlapStat] = field(default_factory=list)

    # -- Figure 3(a): consumers per define ------------------------------------

    def consumers_cdf(self, dynamic: bool = False) -> dict[int, float]:
        """Cumulative fraction of defines with <= N consumers."""
        weights: dict[int, int] = {}
        for stat in self.defines:
            w = stat.weight if dynamic else 1
            if w:
                weights[stat.consumers] = weights.get(stat.consumers, 0) + w
        return _cdf(weights)

    # -- Figure 3(b): live range durations -------------------------------------

    def duration_cdf(self, dynamic: bool = False) -> dict[int, float]:
        weights: dict[int, int] = {}
        for stat in self.defines:
            w = stat.weight if dynamic else 1
            if w:
                weights[stat.duration] = weights.get(stat.duration, 0) + w
        return _cdf(weights)

    # -- Figure 3(c): overlap by loop -------------------------------------------

    def overlap_cdf(self, dynamic: bool = True) -> dict[int, float]:
        weights: dict[int, int] = {}
        for stat in self.loops:
            w = stat.iterations if dynamic else 1
            if w:
                weights[stat.max_live] = weights.get(stat.max_live, 0) + w
        return _cdf(weights)

    def predicates_covering(self, fraction: float = 0.99) -> int:
        """Fewest simultaneously-live predicates covering ``fraction`` of
        dynamic loop iterations (the paper: 4 covers 99%)."""
        cdf = self.overlap_cdf(dynamic=True)
        for n in sorted(cdf):
            if cdf[n] >= fraction:
                return n
        return max(cdf, default=0)


def _cdf(weights: dict[int, int]) -> dict[int, float]:
    total = sum(weights.values())
    if total == 0:
        return {}
    out: dict[int, float] = {}
    running = 0
    for key in sorted(weights):
        running += weights[key]
        out[key] = running / total
    return out


def collect_function_stats(
    func: Function, profile: Profile | None = None
) -> PredicationStats:
    """Measure predication characteristics over ``func``'s hyperblocks."""
    stats = PredicationStats()
    for block in func.blocks:
        has_preds = any(
            op.opcode in (Opcode.PRED_DEF, Opcode.PRED_SET) for op in block.ops
        )
        if not has_preds:
            continue

        ranges = {rng.reg: rng for rng in predicate_live_ranges(block)}
        for i, op in enumerate(block.ops):
            if op.opcode not in (Opcode.PRED_DEF, Opcode.PRED_SET):
                continue
            weight = profile.op_count(func.name, op.uid) if profile else 0
            for reg in op.dests:
                rng = ranges.get(reg)
                if rng is None:
                    continue
                consumers = sum(1 for c in rng.consumers if c > i)
                last = max((c for c in rng.consumers if c > i), default=i)
                stats.defines.append(
                    DefineStat(func.name, block.label, op.uid, reg,
                               consumers, last - i, weight)
                )

        term = block.terminator
        is_loop = term is not None and term.target == block.label
        if is_loop:
            iters = profile.block_count(func.name, block.label) if profile else 0
            stats.loops.append(
                LoopOverlapStat(func.name, block.label,
                                max_live_predicates(block), iters)
            )
    return stats


def collect_module_stats(
    module: Module, profile: Profile | None = None
) -> PredicationStats:
    total = PredicationStats()
    for func in module.functions.values():
        got = collect_function_stats(func, profile)
        total.defines.extend(got.defines)
        total.loops.extend(got.loops)
    return total
