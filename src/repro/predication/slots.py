"""Slot-based predication allocation (Section 4.2, Figure 4).

The paper's low-overhead scheme replaces the predicate register file with
one **standing predicate** per issue slot: predicate defines "source-route"
computed values directly to the slots whose operations they control, and
every operation spends a single **predicate-sensitivity bit** (``psens``)
saying whether it consults its slot's standing predicate.

Allocation happens after scheduling, when every operation has an issue
slot.  For each predicate web the constraints are:

* all consumers of a predicate must find its value in their own slot, so
  each define routes the value to every consumer slot — and a define can
  drive at most **two** slot predicates (Figure 4's encoding);
* a slot holds one standing predicate at a time: predicates routed to the
  same slot must have disjoint [define, last-consumer] intervals;
* two defines may write the same slot in the same cycle only if they are
  guaranteed to write the same value (or-type contributions to one
  predicate); the compiler must not co-schedule potential 0/1 writers.

When consumers span more than two slots, extra defines would have to be
replicated (Section 4.2's asymmetric-machine caveat); we report the
replication count rather than silently rescheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode
from repro.ir.registers import VReg

#: a predicate define can drive this many slot predicates (Figure 4)
SLOTS_PER_DEFINE = 2


@dataclass
class PredicateRoute:
    """Where one predicate's value lives under the slot-based scheme."""

    reg: VReg
    define_times: list[int] = field(default_factory=list)
    consumer_slots: set[int] = field(default_factory=set)
    interval: tuple[int, int] = (0, 0)   # [first define, last consumer]


@dataclass
class SlotAllocation:
    """Result of slot-predication allocation for one scheduled block."""

    routes: dict[VReg, PredicateRoute] = field(default_factory=dict)
    sensitive_ops: int = 0
    total_ops: int = 0
    #: defines whose consumers span more than SLOTS_PER_DEFINE slots, and
    #: would need replicated defines on this schedule
    replications_needed: int = 0
    #: (slot, pred_a, pred_b) standing-predicate interval conflicts
    conflicts: list[tuple[int, VReg, VReg]] = field(default_factory=list)
    #: (cycle, slot) pairs where two defines could write opposite values
    write_races: list[tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.conflicts and not self.write_races

    @property
    def extra_defines(self) -> int:
        return self.replications_needed


def allocate_slot_predication(block: BasicBlock, schedule) -> SlotAllocation:
    """Bind the block's predicates to issue-slot standing predicates.

    ``schedule`` is a :class:`repro.sched.bundle.Schedule` or
    :class:`repro.sched.modulo.ModuloSchedule`-like object exposing issue
    times and slots for each op uid (``cycle_of``/``slot_of`` or
    ``times``/``slots`` dicts).
    """
    times, slots = _placement_maps(block, schedule)
    alloc = SlotAllocation()

    # gather webs
    for op in block.ops:
        if op.opcode == Opcode.NOP or op.uid not in times:
            continue
        alloc.total_ops += 1
        if op.guard is not None:
            route = alloc.routes.setdefault(op.guard, PredicateRoute(op.guard))
            route.consumer_slots.add(slots[op.uid])
            op.attrs["psens"] = True
            alloc.sensitive_ops += 1
        if op.opcode in (Opcode.PRED_DEF, Opcode.PRED_SET):
            for dest in op.dests:
                route = alloc.routes.setdefault(dest, PredicateRoute(dest))
                route.define_times.append(times[op.uid])

    # intervals and routing annotations
    for op in block.ops:
        if op.opcode in (Opcode.PRED_DEF, Opcode.PRED_SET) and op.uid in times:
            routing: dict[str, list[int]] = {}
            for dest in op.dests:
                route = alloc.routes[dest]
                target_slots = sorted(route.consumer_slots)
                routing[repr(dest)] = target_slots
                if len(target_slots) > SLOTS_PER_DEFINE:
                    alloc.replications_needed += (
                        -(-len(target_slots) // SLOTS_PER_DEFINE) - 1
                    )
            op.attrs["slot_route"] = routing

    for reg, route in alloc.routes.items():
        start = min(route.define_times, default=0)
        end = start
        for op in block.ops:
            if op.guard == reg and op.uid in times:
                end = max(end, times[op.uid])
        route.interval = (start, end)

    _check_conflicts(alloc)
    _check_write_races(block, times, slots, alloc)
    return alloc


def _placement_maps(block, schedule) -> tuple[dict[int, int], dict[int, int]]:
    if hasattr(schedule, "placement"):  # list Schedule
        times = {uid: p.cycle for uid, p in schedule.placement.items()}
        slots = {uid: p.slot for uid, p in schedule.placement.items()}
        return times, slots
    return dict(schedule.times), dict(schedule.slots)  # ModuloSchedule


def _check_conflicts(alloc: SlotAllocation) -> None:
    """Standing-predicate interference: per slot, intervals must not overlap."""
    by_slot: dict[int, list[PredicateRoute]] = {}
    for route in alloc.routes.values():
        for slot in route.consumer_slots:
            by_slot.setdefault(slot, []).append(route)
    for slot, routes in by_slot.items():
        routes.sort(key=lambda r: r.interval)
        for a, b in zip(routes, routes[1:]):
            # half-open overlap: a's value must stand until its last
            # consumer; b may not be defined into the slot before that
            if b.interval[0] < a.interval[1] and a.reg != b.reg:
                alloc.conflicts.append((slot, a.reg, b.reg))


def _check_write_races(block, times, slots, alloc) -> None:
    """Two defines in one cycle writing one slot with possibly-different
    values are a hardware race (Section 4.2)."""
    writers: dict[tuple[int, int], list] = {}
    for op in block.ops:
        if op.opcode not in (Opcode.PRED_DEF, Opcode.PRED_SET):
            continue
        if op.uid not in times:
            continue
        for dest in op.dests:
            route = alloc.routes.get(dest)
            if route is None:
                continue
            for slot in route.consumer_slots:
                writers.setdefault((times[op.uid], slot), []).append((op, dest))
    for (cycle, slot), entries in writers.items():
        if len(entries) < 2:
            continue
        regs = {dest for _, dest in entries}
        if len(regs) > 1:
            alloc.write_races.append((cycle, slot))
        else:
            # same predicate: or-type contributions write only equal values
            ptypes = set()
            for op, _ in entries:
                if op.opcode == Opcode.PRED_DEF:
                    ptypes.update(op.attrs["ptypes"])
                else:
                    ptypes.add("set")
            one_writers = ptypes & {"ot", "of"}
            zero_writers = ptypes & {"at", "af"}
            mixed = ptypes & {"ut", "uf", "ct", "cf", "set"}
            if mixed or (one_writers and zero_writers):
                alloc.write_races.append((cycle, slot))
