"""Global predicate relation analysis: psi-SSA-style predicate webs.

The block-local :class:`~repro.analysis.predrel.PredicateRelations`
summary cannot see across block boundaries and conflates every value a
register ever holds.  This analysis names each **definition site** — a
(predicate-writing operation, destination) pair, in the spirit of
de Ferrière's psi-SSA, where each partial predicate define is a
psi-merge of the old value with the new contribution — and flows two
pieces of state to every program point:

* an **environment** mapping each predicate register to the set of sites
  whose value may be current there (its *web*), with a distinguished
  :data:`UNDEF` member when some path reaches the point without any
  write;
* a set of **facts** over sites in the shared language of
  :mod:`repro.analysis.predfacts` (subset / disjoint / known-zero).

Site atoms make the facts *time-invariant names*: a fact talks about the
value produced by a particular site's most recent execution, so a
register being redefined does not silently repoint standing facts at a
different value (the hazard that makes flow-insensitive summaries
unsound around redefinitions).  When a site re-executes — a loop
iteration — the transfer first kills every fact mentioning it, then
regenerates from the current state (*kill-then-gen*).

Fact semantics: a fact over sites ``a``, ``b`` holds in every execution
in which both ``a`` and ``b`` are the realized (most recent) writes of
their registers.  Register-level queries quantify over the site
environment — ``disjoint(p, q)`` holds at a point iff the fact holds for
*every* pair in ``sites(p) × sites(q)`` — which matches per-execution
reality because each execution realizes exactly one pair.  The meet
intersects fact sets (facts true along every incoming path) and unions
environments; intersection preserves closure, so queries stay precise
without re-closing at merge points.

Partial defines track *known-zero* webs: ``pred_set p = 0`` roots a web
with a ``z`` fact, and an or-type accumulation into a known-zero
register is exactly ``guard & cond`` — the case Section 3 of the paper
needs for or-combined predicates to participate in disjointness
reasoning at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, NamedTuple

from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.registers import VReg

from .cfgview import CFGView
from .dataflow import FORWARD, TOP, DataflowProblem, DataflowResult, solve
from .predfacts import (
    REPLACE,
    STRENGTHEN,
    WEAKEN,
    close_pred_facts,
    dfact,
    facts_disjoint,
    facts_subset,
    redefinition_kind,
)

#: pseudo-site meaning "no write reaches along some path"
UNDEF = -1

#: destination types computing the compare result (vs its negation)
_T_TYPES = frozenset({"ut", "ot", "at", "ct"})


class Site(NamedTuple):
    """A static predicate definition site."""

    sid: int
    label: str | None       #: block label; ``None`` for entry (parameter)
    index: int              #: op index within the block; ``-1`` for entry
    uid: int | None         #: defining operation uid; ``None`` for entry
    reg: VReg               #: the register this site writes
    ptype: str | None       #: PRED_DEF dest type, ``"set"``, or ``None``


@dataclass(frozen=True)
class _State:
    """Dataflow value: site environment + closed fact set."""

    env: tuple            # sorted tuple of (VReg, frozenset[int])
    facts: frozenset

    def env_map(self) -> dict:
        return dict(self.env)


def _pack_env(env: dict) -> tuple:
    return tuple(sorted(env.items(),
                        key=lambda kv: (kv[0].kind, kv[0].index)))


class _WebProblem(DataflowProblem):
    direction = FORWARD
    name = "predweb"

    def __init__(self, web: "PredicateWeb") -> None:
        self.web = web

    def boundary(self) -> _State:
        env = {site.reg: frozenset((site.sid,))
               for site in self.web.entry_sites}
        return _State(_pack_env(env), frozenset())

    def meet(self, values: list[_State]):
        if not values:
            return TOP
        if len(values) == 1:
            return values[0]
        env: dict = {}
        domain: set = set()
        maps = [value.env_map() for value in values]
        for m in maps:
            domain.update(m)
        for reg in domain:
            merged: frozenset = frozenset()
            for m in maps:
                merged |= m.get(reg, _UNDEF_SITES)
            env[reg] = merged
        facts = frozenset.intersection(*(value.facts for value in values))
        return _State(_pack_env(env), facts)

    def transfer(self, label: str, value: _State,
                 result: DataflowResult) -> _State:
        return self.web._transfer_block(label, value)


_UNDEF_SITES = frozenset((UNDEF,))


class PredicateWeb:
    """Flow-sensitive predicate webs and relation facts for a function.

    Queries go through :meth:`at` / :meth:`points`, which expose the
    state *before* a given operation executes.
    """

    def __init__(self, func: Function, cfg: CFGView | None = None) -> None:
        self.func = func
        self.cfg = cfg if cfg is not None else CFGView(func)
        self.sites: list[Site] = []
        self._site_of: dict[tuple[int, int], int] = {}  # (uid, dest idx)
        self.entry_sites: list[Site] = []
        self._number_sites()
        result = solve(_WebProblem(self), self.cfg)
        self._entry_state: dict[str, _State] = dict(result.input)
        self._points: dict[str, list["WebPoint"]] = {}
        self.stats = result.stats

    # -- construction -------------------------------------------------------------

    def _number_sites(self) -> None:
        for param in self.func.params:
            if param.is_predicate:
                site = Site(len(self.sites), None, -1, None, param, None)
                self.sites.append(site)
                self.entry_sites.append(site)
        for block in self.func.blocks:
            for index, op in enumerate(block.ops):
                for dest_idx, dest in enumerate(op.dests):
                    if not dest.is_predicate:
                        continue
                    ptype = None
                    if op.opcode == Opcode.PRED_DEF:
                        ptype = op.attrs["ptypes"][dest_idx]
                    elif op.opcode == Opcode.PRED_SET:
                        ptype = "set"
                    site = Site(len(self.sites), block.label, index,
                                op.uid, dest, ptype)
                    self.sites.append(site)
                    self._site_of[(op.uid, dest_idx)] = site.sid

    def site(self, sid: int) -> Site:
        return self.sites[sid]

    # -- transfer -----------------------------------------------------------------

    def _transfer_block(self, label: str, state: _State) -> _State:
        env = state.env_map()
        facts = set(state.facts)
        for op in self.func.block(label).ops:
            self._transfer_op(op, env, facts)
        return _State(_pack_env(env), close_pred_facts(facts))

    def _transfer_op(self, op: Operation, env: dict, facts: set) -> None:
        pred_dests = [(i, d) for i, d in enumerate(op.dests)
                      if d.is_predicate]
        if not pred_dests:
            return
        guarded = op.guard is not None
        guard_sites = (env.get(op.guard, _UNDEF_SITES) if guarded
                       else frozenset())
        exact: dict[int, bool] = {}  # dest idx -> value is exactly g&c / g&!c

        for dest_idx, dest in pred_dests:
            sid = self._site_of[(op.uid, dest_idx)]
            # kill-then-gen: this site re-executes, so every standing fact
            # about its previous execution's value dies first
            stale = {f for f in facts if sid in f[1:]}
            facts -= stale

            old = env.get(dest, _UNDEF_SITES)
            zeroish = UNDEF not in old and all(
                ("z", o) in facts for o in old)
            ptype = None
            if op.opcode == Opcode.PRED_DEF:
                ptype = op.attrs["ptypes"][dest_idx]
            kind = redefinition_kind(op.opcode, ptype, guarded)

            if op.opcode == Opcode.PRED_SET:
                writes_zero = not _imm_value(op)
                if kind == REPLACE:
                    env[dest] = frozenset((sid,))
                    if writes_zero:
                        facts.add(("z", sid))
                else:  # guarded: write iff guard, else keep old
                    env[dest] = frozenset((sid,)) | (old & _UNDEF_SITES)
                    if writes_zero and zeroish:
                        facts.add(("z", sid))
                exact[dest_idx] = False
                continue

            if kind == REPLACE:
                env[dest] = frozenset((sid,))
                is_exact = op.opcode == Opcode.PRED_DEF
            elif kind == STRENGTHEN:
                # dest |= g & c: on a known-zero web this is a fresh
                # g & c value (the psi chain root was pred_set 0)
                if zeroish:
                    env[dest] = frozenset((sid,))
                    is_exact = True
                else:
                    env[dest] = frozenset((sid,)) | (old & _UNDEF_SITES)
                    is_exact = False
                    # x ⊆ o for every reaching o  =>  x ⊆ merged value
                    for x in self._common_subsets(facts, old):
                        facts.add(("s", x, sid))
            elif kind == WEAKEN:
                env[dest] = frozenset((sid,)) | (old & _UNDEF_SITES)
                is_exact = False
                if zeroish:
                    facts.add(("z", sid))
                elif UNDEF not in old:
                    # merged ⊆ x / merged ∦ y inherit when every o agrees
                    for x in self._common_supersets(facts, old):
                        facts.add(("s", sid, x))
                    for y in self._common_disjoint(facts, old):
                        facts.add(dfact(sid, y))
            else:  # MERGE: guarded ct/cf or an opaque write
                if ptype in ("ct", "cf") and zeroish:
                    # old was 0, written iff guard: exactly g & c
                    env[dest] = frozenset((sid,))
                    is_exact = True
                else:
                    env[dest] = frozenset((sid,)) | (old & _UNDEF_SITES)
                    is_exact = False

            exact[dest_idx] = is_exact and op.opcode == Opcode.PRED_DEF
            if exact[dest_idx] and guarded:
                # value is guard & (condition-ish): site ⊆ each guard site
                for gs in guard_sites:
                    if gs != UNDEF:
                        facts.add(("s", sid, gs))

        # complementary pair: two exact dests of one define with opposite
        # polarity hold g&c and g&!c — never both true
        if op.opcode == Opcode.PRED_DEF and len(pred_dests) == 2:
            (i0, d0), (i1, d1) = pred_dests
            if d0 != d1 and exact.get(i0) and exact.get(i1):
                ptypes = op.attrs["ptypes"]
                pol0 = ptypes[i0] in _T_TYPES
                pol1 = ptypes[i1] in _T_TYPES
                if pol0 != pol1:
                    facts.add(dfact(self._site_of[(op.uid, i0)],
                                    self._site_of[(op.uid, i1)]))

    @staticmethod
    def _common_subsets(facts: set, sites: frozenset) -> set:
        """Atoms x with x ⊆ o for every o in ``sites``."""
        common: set | None = None
        for o in sites:
            subs = {f[1] for f in facts if f[0] == "s" and f[2] == o}
            common = subs if common is None else common & subs
            if not common:
                return set()
        return common or set()

    @staticmethod
    def _common_supersets(facts: set, sites: frozenset) -> set:
        common: set | None = None
        for o in sites:
            sups = {f[2] for f in facts if f[0] == "s" and f[1] == o}
            common = sups if common is None else common & sups
            if not common:
                return set()
        return common or set()

    @staticmethod
    def _common_disjoint(facts: set, sites: frozenset) -> set:
        common: set | None = None
        for o in sites:
            dis = set()
            for f in facts:
                if f[0] == "d":
                    if f[1] == o:
                        dis.add(f[2])
                    elif f[2] == o:
                        dis.add(f[1])
            common = dis if common is None else common & dis
            if not common:
                return set()
        return common or set()

    # -- point queries ------------------------------------------------------------

    def points(self, label: str) -> list["WebPoint"]:
        """One :class:`WebPoint` per op of ``label`` (state *before* the
        op), plus a final point for the block's exit state."""
        cached = self._points.get(label)
        if cached is not None:
            return cached
        block = self.func.block(label)
        state = self._entry_state.get(label)
        points: list[WebPoint] = []
        if state is None:
            # unreachable: everything unknown
            env: dict = {}
            facts: set = set()
            for _ in range(len(block.ops) + 1):
                points.append(WebPoint(self, dict(env), frozenset()))
        else:
            env = state.env_map()
            facts = set(state.facts)
            for op in block.ops:
                points.append(WebPoint(self, dict(env),
                                       close_pred_facts(facts)))
                self._transfer_op(op, env, facts)
            points.append(WebPoint(self, dict(env), close_pred_facts(facts)))
        self._points[label] = points
        return points

    def at(self, label: str, index: int = 0) -> "WebPoint":
        """The state before op ``index`` of block ``label`` (pass
        ``len(block.ops)`` for the block exit state)."""
        return self.points(label)[index]


class WebPoint:
    """Predicate queries at one program point."""

    def __init__(self, web: PredicateWeb, env: dict,
                 facts: frozenset) -> None:
        self._web = web
        self._env = env
        self.facts = facts

    def sites(self, reg: VReg) -> frozenset:
        """Site ids whose value may be current for ``reg`` (may include
        :data:`UNDEF`)."""
        return self._env.get(reg, _UNDEF_SITES)

    def web_of(self, reg: VReg) -> list[Site]:
        """The reaching definition sites of ``reg``, in site order
        (:data:`UNDEF` is reported via :meth:`possibly_undefined`)."""
        return [self._web.site(sid)
                for sid in sorted(self.sites(reg)) if sid != UNDEF]

    def possibly_undefined(self, reg: VReg) -> bool:
        """Some path reaches this point without any write to ``reg``."""
        return UNDEF in self.sites(reg)

    def disjoint(self, a: VReg | None, b: VReg | None) -> bool:
        """Operations guarded by ``a`` and ``b`` can never both execute."""
        if a is None or b is None or a == b:
            return False
        return self.disjoint_sites(self.sites(a), self.sites(b))

    def implies(self, a: VReg | None, b: VReg | None) -> bool:
        """``a`` true at this point implies ``b`` true."""
        if a == b:
            return True
        if a is None or b is None:
            return False
        return self.implies_sites(self.sites(a), self.sites(b))

    def implies_execution(self, a: VReg | None, b: VReg | None) -> bool:
        """Guard ``a`` executing implies guard ``b`` executes."""
        if b is None:
            return True
        if a is None:
            return False
        return self.implies(a, b)

    # -- site-pinned queries (for cross-point reasoning) --------------------------

    def disjoint_sites(self, a: Iterable[int], b: Iterable[int]) -> bool:
        """Every (x, y) pair of the two webs is provably disjoint.

        Site sets captured at *earlier* points of the same block may be
        queried here: sites never re-execute between two points of one
        straight-line block execution, so their facts still describe the
        same values.
        """
        a, b = set(a), set(b)
        if not a or not b:
            return False
        # UNDEF pairs prove nothing on their own, but a known-zero other
        # side still wins (0 ∧ anything = 0); facts_disjoint covers that
        # because no fact ever mentions UNDEF.  Identical sites carry the
        # same value, disjoint from itself only when known zero.
        return all(
            (facts_disjoint(self.facts, x, y) if x != y
             else ("z", x) in self.facts)
            for x in a for y in b)

    def implies_sites(self, a: Iterable[int], b: Iterable[int]) -> bool:
        """Every value pair of the two webs satisfies x ⊆ y."""
        a, b = set(a), set(b)
        if not a or not b or UNDEF in a:
            return False  # an unwritten-path value implies nothing
        return all(facts_subset(self.facts, x, y)
                   for x in a for y in b)


def _imm_value(op: Operation):
    src = op.srcs[0]
    return getattr(src, "value", None)
