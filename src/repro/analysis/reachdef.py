"""Must-defined registers: forward dataflow over the CFG.

The lint rules need "is this register written on *every* path from the
entry before this read?"  That is the intersection-over-predecessors dual
of classic reaching definitions: a register is *must-defined* at a point
when every CFG path from the entry to that point contains a write.

One deliberate approximation: a **guarded** write counts as a definition
even though the hardware may nullify it.  Predicated code writes both arms
of an if-converted diamond under complementary predicates, and exactly one
arm executes; treating either write as defining keeps those (perfectly
well-defined) webs out of the report.  The resulting analysis therefore
*under*-reports true use-before-def, which is the right polarity for an
error-severity rule: anything it flags is undefined along every predicate
assignment of some path.  (The predicate-web analysis refines this for
predicate registers specifically: :mod:`repro.analysis.predweb` tracks
whether a *partial* define chain can leave its destination unwritten.)

Initial definitions at function entry: the parameters and the frame-base
register (bound by the call/simulation machinery before the first block).

The fixpoint is a forward must-problem on the generic worklist engine
(:mod:`repro.analysis.dataflow`); blocks not yet constrained by any
computed predecessor sit at TOP and are deferred.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.operation import Operation
from repro.ir.registers import VReg

from .cfgview import CFGView
from .dataflow import (
    FORWARD,
    TOP,
    DataflowProblem,
    DataflowResult,
    solve,
)


@dataclass
class MustDefinedInfo:
    """Per-block must-defined register sets (at block entry)."""

    defined_in: dict[str, set[VReg]] = field(default_factory=dict)

    def at_entry(self, label: str) -> set[VReg]:
        return self.defined_in.get(label, set())


def entry_definitions(func: Function) -> set[VReg]:
    """Registers defined before the entry block executes."""
    defined = set(func.params)
    if func.frame_base is not None:
        defined.add(func.frame_base)
    return defined


class _MustDefinedProblem(DataflowProblem):
    """Forward must-defined: input = defined at entry, output = at exit."""

    direction = FORWARD
    name = "must-defined"

    def __init__(self, func: Function, cfg: CFGView) -> None:
        self.func = func
        self.block_defs: dict[str, set[VReg]] = {
            label: {dst for op in func.block(label).ops
                    for dst in op.writes()}
            for label in cfg.nodes
        }

    def boundary(self) -> set[VReg]:
        return entry_definitions(self.func)

    def meet(self, values: list[set[VReg]]):
        if not values:
            return TOP
        out = set(values[0])
        for value in values[1:]:
            out &= value
        return out

    def transfer(self, label: str, value: set[VReg],
                 result: DataflowResult) -> set[VReg]:
        return value | self.block_defs[label]


def must_defined(func: Function, cfg: CFGView | None = None) -> MustDefinedInfo:
    """Forward must-defined analysis (intersection over predecessors)."""
    if cfg is None:
        cfg = CFGView(func)
    result = solve(_MustDefinedProblem(func, cfg), cfg)
    return MustDefinedInfo({
        label: set(result.input.get(label, set()))
        for label in cfg.reverse_postorder()
    })


def undefined_reads(
    func: Function, cfg: CFGView | None = None
) -> list[tuple[str, int, Operation, VReg]]:
    """Reads of registers not defined on every path from the entry.

    Returns ``(block label, op index, operation, register)`` tuples in
    layout order.  Unreachable blocks are not scanned (the verifier rejects
    them separately).
    """
    if cfg is None:
        cfg = CFGView(func)
    info = must_defined(func, cfg)
    reachable = cfg.reachable()
    found: list[tuple[str, int, Operation, VReg]] = []
    for block in func.blocks:
        if block.label not in reachable:
            continue
        defined = set(info.at_entry(block.label))
        for index, op in enumerate(block.ops):
            for reg in op.reads():
                if reg not in defined:
                    found.append((block.label, index, op, reg))
            defined.update(op.writes())
    return found
