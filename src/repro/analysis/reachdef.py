"""Must-defined registers: forward dataflow over the CFG.

The lint rules need "is this register written on *every* path from the
entry before this read?"  That is the intersection-over-predecessors dual
of classic reaching definitions: a register is *must-defined* at a point
when every CFG path from the entry to that point contains a write.

One deliberate approximation: a **guarded** write counts as a definition
even though the hardware may nullify it.  Predicated code writes both arms
of an if-converted diamond under complementary predicates, and exactly one
arm executes; treating either write as defining keeps those (perfectly
well-defined) webs out of the report.  The resulting analysis therefore
*under*-reports true use-before-def, which is the right polarity for an
error-severity rule: anything it flags is undefined along every predicate
assignment of some path.

Initial definitions at function entry: the parameters and the frame-base
register (bound by the call/simulation machinery before the first block).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.operation import Operation
from repro.ir.registers import VReg

from .cfgview import CFGView


@dataclass
class MustDefinedInfo:
    """Per-block must-defined register sets (at block entry)."""

    defined_in: dict[str, set[VReg]] = field(default_factory=dict)

    def at_entry(self, label: str) -> set[VReg]:
        return self.defined_in.get(label, set())


def entry_definitions(func: Function) -> set[VReg]:
    """Registers defined before the entry block executes."""
    defined = set(func.params)
    if func.frame_base is not None:
        defined.add(func.frame_base)
    return defined


def must_defined(func: Function, cfg: CFGView | None = None) -> MustDefinedInfo:
    """Forward must-defined analysis (intersection over predecessors)."""
    if cfg is None:
        cfg = CFGView(func)
    order = cfg.reverse_postorder()
    block_defs: dict[str, set[VReg]] = {
        label: {dst for op in func.block(label).ops for dst in op.writes()}
        for label in order
    }
    # top = "everything defined"; entry starts from params + frame base
    defined_in: dict[str, set[VReg] | None] = {label: None for label in order}
    defined_in[cfg.entry] = entry_definitions(func)

    changed = True
    while changed:
        changed = False
        for label in order:
            if label == cfg.entry:
                continue
            incoming: set[VReg] | None = None
            for pred in cfg.preds[label]:
                pred_out = defined_in.get(pred)
                if pred_out is None:
                    continue  # top: no constraint yet
                pred_out = pred_out | block_defs[pred]
                incoming = (set(pred_out) if incoming is None
                            else incoming & pred_out)
            if incoming is not None and incoming != defined_in[label]:
                defined_in[label] = incoming
                changed = True

    return MustDefinedInfo({
        label: (defs if defs is not None else set())
        for label, defs in defined_in.items()
    })


def undefined_reads(
    func: Function, cfg: CFGView | None = None
) -> list[tuple[str, int, Operation, VReg]]:
    """Reads of registers not defined on every path from the entry.

    Returns ``(block label, op index, operation, register)`` tuples in
    layout order.  Unreachable blocks are not scanned (the verifier rejects
    them separately).
    """
    if cfg is None:
        cfg = CFGView(func)
    info = must_defined(func, cfg)
    reachable = cfg.reachable()
    found: list[tuple[str, int, Operation, VReg]] = []
    for block in func.blocks:
        if block.label not in reachable:
            continue
        defined = set(info.at_entry(block.label))
        for index, op in enumerate(block.ops):
            for reg in op.reads():
                if reg not in defined:
                    found.append((block.label, index, op, reg))
            defined.update(op.writes())
    return found
