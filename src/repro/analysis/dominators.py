"""Dominator and postdominator computation (Cooper-Harvey-Kennedy).

If-conversion needs both: a hyperblock region is selected among blocks
dominated by the region entry, and predicate assignment uses control
dependences derived from postdominance.
"""

from __future__ import annotations

from .cfgview import CFGView


class DominatorTree:
    """Immediate-dominator tree over a :class:`CFGView`."""

    def __init__(self, idom: dict[str, str | None], order: list[str]) -> None:
        self.idom = idom
        self._order_index = {label: i for i, label in enumerate(order)}

    def dominates(self, a: str, b: str) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        node: str | None = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
            if node == b:  # self-loop guard for the root
                return False
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def children(self, label: str) -> list[str]:
        return sorted(
            (node for node, parent in self.idom.items() if parent == label),
            key=lambda node: self._order_index.get(node, 0),
        )


def _compute_idoms(
    nodes: list[str],
    preds: dict[str, list[str]],
    entry: str,
) -> dict[str, str | None]:
    """Cooper-Harvey-Kennedy iterative dominator algorithm."""
    order = nodes  # reverse postorder, entry first
    index = {label: i for i, label in enumerate(order)}
    idom: dict[str, str | None] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            candidates = [p for p in preds.get(node, []) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    result: dict[str, str | None] = dict(idom)
    result[entry] = None
    return result


def dominator_tree(cfg: CFGView) -> DominatorTree:
    """Dominator tree of the reachable portion of ``cfg``."""
    order = cfg.reverse_postorder()
    reachable = set(order)
    preds = {
        node: [p for p in cfg.preds[node] if p in reachable] for node in order
    }
    idom = _compute_idoms(order, preds, cfg.entry)
    return DominatorTree(idom, order)


def postdominator_tree(cfg: CFGView) -> DominatorTree:
    """Postdominator tree; exit-less cycles hang off a virtual exit.

    All nodes with no successors are treated as predecessors of a single
    virtual exit node ``<exit>``; nodes that cannot reach any exit (infinite
    loops) are attached conservatively.
    """
    exits = [node for node in cfg.nodes if not cfg.succs[node]]
    virtual = "<exit>"
    # reverse the graph
    rsuccs: dict[str, list[str]] = {node: list(cfg.preds[node]) for node in cfg.nodes}
    rsuccs[virtual] = list(exits)
    rpreds: dict[str, list[str]] = {node: [] for node in cfg.nodes}
    rpreds[virtual] = []
    for node, succs in rsuccs.items():
        for succ in succs:
            rpreds[succ].append(node)

    # reverse postorder on the reversed graph from the virtual exit
    seen: set[str] = set()
    order: list[str] = []

    def visit(start: str) -> None:
        stack = [(start, iter(rsuccs[start]))]
        seen.add(start)
        while stack:
            node, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(rsuccs[succ])))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()

    visit(virtual)
    order.reverse()
    preds_in_order = {node: [p for p in rpreds[node] if p in seen] for node in order}
    idom = _compute_idoms(order, preds_in_order, virtual)
    return DominatorTree(idom, order)
