"""Generic worklist dataflow engine over :class:`CFGView`.

Every global analysis in this package — liveness, must-defined, and the
predicate web — is the same shape: a value per block edge, a monotone
per-block transfer, and a meet over flow-predecessors, iterated to a
fixpoint.  This module owns that shape once.  A
:class:`DataflowProblem` supplies the direction, the boundary value, the
meet and the transfer; :func:`solve` runs a deterministic worklist
(seeded in flow order, re-armed in flow order) and returns per-block
``input``/``output`` maps plus fixpoint statistics.

Conventions
-----------

* Values flow in the *flow direction*: for a forward problem the input
  of a block is the meet over its CFG predecessors' outputs; for a
  backward problem it is the meet over its CFG successors' outputs.
  Liveness therefore reads ``input[b]`` as live-out and ``output[b]`` as
  live-in.
* ``meet([])`` is consulted for reachable blocks with no computed
  contribution yet (e.g. a loop entered only by a back edge).  Union
  problems return their identity (empty set); must-problems return
  :data:`TOP` and the block is left untransferred until a contribution
  arrives.
* Transfers may read *other* blocks' current outputs through the result
  (liveness revives side-exit targets mid-block); the engine re-arms
  flow-successors whenever an output changes, so such reads re-converge.

Only reachable blocks participate (matching ``CFGView.reverse_postorder``);
callers that must report on unreachable blocks default the missing
entries themselves.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

from repro.obs import get_tracer

from .cfgview import CFGView

FORWARD = "forward"
BACKWARD = "backward"


class _Top:
    """Above every lattice value: "not yet constrained by any path"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TOP"


#: the unique top sentinel; ``meet([])`` returns it to defer a transfer.
TOP = _Top()


class DataflowProblem:
    """A dataflow problem instance: direction, boundary, meet, transfer.

    Subclasses bind whatever per-function context they need (the
    function, precomputed per-block summaries) in ``__init__`` and
    override the four hooks below.  Values must be comparable with
    ``==`` (override :meth:`equal` otherwise) and are stored as-is —
    transfers must not mutate their input.
    """

    #: :data:`FORWARD` or :data:`BACKWARD`
    direction = FORWARD
    #: short name used in fixpoint stats and trace instants
    name = "dataflow"

    def boundary(self) -> Any:
        """Value entering the flow at boundary blocks (the CFG entry for
        forward problems; exit blocks for backward problems)."""
        raise NotImplementedError

    def meet(self, values: list[Any]) -> Any:
        """Combine flow-predecessor outputs.  ``values`` may be empty
        (no contribution computed yet); return the meet identity or
        :data:`TOP` to defer the block."""
        raise NotImplementedError

    def transfer(self, label: str, value: Any, result: "DataflowResult") -> Any:
        """Flow ``value`` through block ``label``.  ``result`` exposes
        the in-progress solution for transfers that peek at other
        blocks' outputs (see module docstring)."""
        raise NotImplementedError

    def equal(self, a: Any, b: Any) -> bool:
        return a == b


@dataclass
class FixpointStats:
    """Work accounting for one :func:`solve` call."""

    problem: str = ""
    nodes: int = 0
    transfers: int = 0
    #: worklist pops, including deferred (TOP-input) visits
    visits: int = 0

    def as_dict(self) -> dict:
        return {
            "problem": self.problem,
            "nodes": self.nodes,
            "transfers": self.transfers,
            "visits": self.visits,
        }


@dataclass
class DataflowResult:
    """Fixpoint solution: per-block input/output values in flow order.

    Blocks never constrained (unreachable, or deferred forever because no
    path reaches them with a non-top value) are absent; the accessors
    take a default.
    """

    input: dict[str, Any] = field(default_factory=dict)
    output: dict[str, Any] = field(default_factory=dict)
    stats: FixpointStats = field(default_factory=FixpointStats)

    def input_of(self, label: str, default: Any = None) -> Any:
        return self.input.get(label, default)

    def output_of(self, label: str, default: Any = None) -> Any:
        return self.output.get(label, default)


#: accumulated stats per problem name (cleared with :func:`reset_stats`)
STATS: dict[str, FixpointStats] = {}


def reset_stats() -> None:
    STATS.clear()


def _accumulate(stats: FixpointStats) -> None:
    agg = STATS.setdefault(stats.problem, FixpointStats(stats.problem))
    agg.nodes += stats.nodes
    agg.transfers += stats.transfers
    agg.visits += stats.visits


def solve(problem: DataflowProblem, cfg: CFGView) -> DataflowResult:
    """Run ``problem`` to fixpoint over ``cfg`` with a deterministic
    worklist (priority = position in flow order; ties impossible)."""
    forward = problem.direction == FORWARD
    rpo = cfg.reverse_postorder()
    order = rpo if forward else list(reversed(rpo))
    pos = {label: i for i, label in enumerate(order)}
    flow_preds = cfg.preds if forward else cfg.succs
    flow_succs = cfg.succs if forward else cfg.preds
    boundary_labels = (
        {cfg.entry} if forward
        else {label for label in order if not cfg.succs[label]}
    )

    result = DataflowResult(stats=FixpointStats(
        problem=problem.name, nodes=len(order)))
    stats = result.stats

    heap: list[tuple[int, str]] = [(i, label) for i, label in enumerate(order)]
    heapq.heapify(heap)
    queued = set(order)

    while heap:
        _, label = heapq.heappop(heap)
        queued.discard(label)
        stats.visits += 1
        if label in boundary_labels:
            value = problem.boundary()
        else:
            contributions = [
                result.output[p] for p in flow_preds[label]
                if p in pos and result.output.get(p, TOP) is not TOP
            ]
            value = problem.meet(contributions)
        if value is TOP:
            continue  # deferred: re-armed when a contribution lands
        result.input[label] = value
        new_out = problem.transfer(label, value, result)
        stats.transfers += 1
        old_out = result.output.get(label, TOP)
        if old_out is TOP or not problem.equal(old_out, new_out):
            result.output[label] = new_out
            for succ in flow_succs[label]:
                if succ in pos and succ not in queued:
                    queued.add(succ)
                    heapq.heappush(heap, (pos[succ], succ))

    _accumulate(stats)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.instant("dataflow_fixpoint", category="analysis",
                       **stats.as_dict())
    return result


def close_facts(
    facts: set,
    rules: Iterable[Callable[[set], Iterable[Hashable]]],
) -> frozenset:
    """Saturate ``facts`` under ``rules`` (each maps the current set to
    newly derivable facts).  Shared by the predicate relation analyses so
    the block-local and global fact closures cannot drift apart."""
    current = set(facts)
    changed = True
    while changed:
        changed = False
        for rule in rules:
            derived = [f for f in rule(current) if f not in current]
            if derived:
                current.update(derived)
                changed = True
    return frozenset(current)
