"""Execution profiles.

The paper's compiler is profile-directed throughout: hyperblock formation,
inlining, loop-transform legality/benefit tests, and loop-buffer assignment
all consume block/edge/branch frequencies.  A :class:`Profile` is produced
by running the functional interpreter (:mod:`repro.sim.interp`) on a
training input, exactly as IMPACT profiles benchmarks before recompiling.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class Profile:
    """Dynamic execution counts keyed by function name."""

    #: (func, block_label) -> times the block was entered
    blocks: dict[tuple[str, str], int] = field(default_factory=lambda: defaultdict(int))
    #: (func, src_label, dst_label) -> times the CFG edge was traversed
    edges: dict[tuple[str, str, str], int] = field(default_factory=lambda: defaultdict(int))
    #: (func, op_uid) -> times the op was encountered (fetched)
    ops: dict[tuple[str, int], int] = field(default_factory=lambda: defaultdict(int))
    #: (func, op_uid) -> times a conditional branch was taken
    taken: dict[tuple[str, int], int] = field(default_factory=lambda: defaultdict(int))
    #: func -> number of invocations
    calls: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: total operations encountered (dynamic op count, NOPs excluded)
    total_ops: int = 0

    # -- recording ------------------------------------------------------------

    def enter_block(self, func: str, label: str) -> None:
        self.blocks[(func, label)] += 1

    def traverse_edge(self, func: str, src: str, dst: str) -> None:
        self.edges[(func, src, dst)] += 1

    def record_op(self, func: str, uid: int) -> None:
        self.ops[(func, uid)] += 1
        self.total_ops += 1

    def record_taken(self, func: str, uid: int) -> None:
        self.taken[(func, uid)] += 1

    def enter_function(self, func: str) -> None:
        self.calls[func] += 1

    # -- queries ---------------------------------------------------------------

    def block_count(self, func: str, label: str) -> int:
        return self.blocks.get((func, label), 0)

    def edge_count(self, func: str, src: str, dst: str) -> int:
        return self.edges.get((func, src, dst), 0)

    def op_count(self, func: str, uid: int) -> int:
        return self.ops.get((func, uid), 0)

    def taken_count(self, func: str, uid: int) -> int:
        return self.taken.get((func, uid), 0)

    def taken_ratio(self, func: str, uid: int) -> float:
        """Fraction of encounters at which a conditional branch was taken."""
        seen = self.op_count(func, uid)
        if seen == 0:
            return 0.0
        return self.taken_count(func, uid) / seen

    def call_count(self, func: str) -> int:
        return self.calls.get(func, 0)

    def function_weight(self, func: str) -> int:
        """Dynamic ops attributable to ``func`` (its own blocks only)."""
        return sum(
            count for (name, _uid), count in self.ops.items() if name == func
        )

    def hottest_blocks(self, func: str, limit: int = 10) -> list[tuple[str, int]]:
        items = [
            (label, count)
            for (name, label), count in self.blocks.items()
            if name == func
        ]
        items.sort(key=lambda item: -item[1])
        return items[:limit]
