"""Natural-loop detection, nesting, and counted-loop (trip count) analysis.

Everything in the paper revolves around loop structure:

* the buffer accommodates only *simple* loops (one straight-line body block
  plus a loop-back branch),
* peeling wants inner loops with *small constant* trip counts,
* collapsing wants a doubly-nested loop whose outer body is small and whose
  inner trip count is computable at entry,
* ``br_cloop`` conversion needs the trip count as a preheader expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.registers import Imm, Operand, VReg

from .cfgview import CFGView
from .dominators import dominator_tree


@dataclass
class Loop:
    """A natural loop: header plus the blocks of its body."""

    header: str
    body: set[str]
    latches: list[str] = field(default_factory=list)
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains(self, label: str) -> bool:
        return label in self.body

    def contains_loop(self, other: "Loop") -> bool:
        return other is not self and other.header in self.body

    def exit_edges(self, cfg: CFGView) -> list[tuple[str, str]]:
        """CFG edges leaving the loop body."""
        edges = []
        for label in sorted(self.body):
            for succ in cfg.succs[label]:
                if succ not in self.body:
                    edges.append((label, succ))
        return edges

    def preheader(self, cfg: CFGView) -> str | None:
        """The unique out-of-loop predecessor of the header, if any."""
        outside = [p for p in cfg.preds[self.header] if p not in self.body]
        if len(outside) == 1:
            return outside[0]
        return None

    def is_innermost(self) -> bool:
        return not self.children

    def __repr__(self) -> str:
        return f"<Loop header={self.header} blocks={len(self.body)} depth={self.depth}>"


def find_loops(func: Function, cfg: CFGView | None = None) -> list[Loop]:
    """All natural loops of ``func``, nested loops linked parent/child.

    Loops sharing a header are merged (as IMPACT does) into one loop with
    multiple latches.  The returned list is sorted outermost-first.
    """
    if cfg is None:
        cfg = CFGView(func)
    dom = dominator_tree(cfg)
    reachable = cfg.reachable()

    # find back edges and collect bodies per header
    bodies: dict[str, set[str]] = {}
    latches: dict[str, list[str]] = {}
    for src in cfg.nodes:
        if src not in reachable:
            continue
        for dst in cfg.succs[src]:
            if dst in reachable and dom.dominates(dst, src):
                body = bodies.setdefault(dst, {dst})
                latches.setdefault(dst, []).append(src)
                # walk predecessors back from the latch
                stack = [src]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(
                        p for p in cfg.preds[node] if p in reachable
                    )

    loops = [
        Loop(header, body, latches[header]) for header, body in bodies.items()
    ]

    # nesting: the parent of L is the smallest loop strictly containing it
    for loop in loops:
        candidates = [
            other
            for other in loops
            if other is not loop and other.contains_loop(loop)
        ]
        if candidates:
            loop.parent = min(candidates, key=lambda c: len(c.body))
            loop.parent.children.append(loop)

    loops.sort(key=lambda lp: (lp.depth, lp.header))
    return loops


def innermost_loops(loops: list[Loop]) -> list[Loop]:
    return [loop for loop in loops if loop.is_innermost()]


def is_simple_loop(func: Function, loop: Loop) -> bool:
    """True for a loop the buffer can hold: a single body block whose only
    backward transfer is the final loop-back branch (side-exit branches in
    the middle are allowed; they leave the loop)."""
    if len(loop.body) != 1:
        return False
    block = func.block(loop.header)
    term = block.terminator
    if term is None or term.target != loop.header:
        return False
    for op in block.ops[:-1]:
        if op.is_branch:
            if op.opcode == Opcode.CALL:
                return False
            target = op.target
            if target is not None and target in loop.body:
                return False
            if op.opcode in (Opcode.RET, Opcode.JUMP):
                return False
            if target is None:
                return False
    return True


# -- counted-loop analysis --------------------------------------------------------


@dataclass
class TripInfo:
    """Counted-loop description.

    ``count`` is the constant trip count when fully constant; otherwise
    ``None`` with ``bound`` possibly a loop-invariant register (the count is
    then ``bound`` when ``init == 0 and step == 1 and cmp == 'lt'``).
    """

    induction: VReg
    init: Operand | None
    step: int
    bound: Operand
    cmp: str
    count: int | None
    increment_op: Operation
    branch_op: Operation

    @property
    def runtime_countable(self) -> bool:
        """The trip count is available (or computable) at loop entry."""
        return self.count is not None or (
            isinstance(self.init, Imm)
            and self.init.value == 0
            and self.step == 1
            and self.cmp == "lt"
        )


def _defs_in_blocks(func: Function, labels: set[str]) -> dict[VReg, int]:
    counts: dict[VReg, int] = {}
    for label in labels:
        for op in func.block(label).ops:
            for dst in op.writes():
                counts[dst] = counts.get(dst, 0) + 1
    return counts


def analyze_trip_count(
    func: Function, loop: Loop, cfg: CFGView | None = None
) -> TripInfo | None:
    """Recognize ``for (i = init; i cmp bound; i += step)`` single-block loops.

    Requirements: one body block, a final conditional branch on the
    induction register against a loop-invariant bound, exactly one
    definition of the induction register in the body (``add i = i, #step``),
    and the increment preceding the branch.
    """
    if len(loop.body) != 1:
        return None
    if cfg is None:
        cfg = CFGView(func)
    block = func.block(loop.header)
    term = block.terminator
    if term is None or term.opcode not in (Opcode.BR, Opcode.BR_WLOOP):
        return None
    if term.target != loop.header or term.guard is not None:
        return None

    src0, src1 = term.srcs
    defs = _defs_in_blocks(func, loop.body)

    def invariant(operand: Operand) -> bool:
        if isinstance(operand, Imm):
            return True
        return isinstance(operand, VReg) and operand not in defs

    if isinstance(src0, VReg) and src0 in defs and invariant(src1):
        induction, bound, cmp = src0, src1, term.attrs["cmp"]
    elif isinstance(src1, VReg) and src1 in defs and invariant(src0):
        flipped = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le",
                   "eq": "eq", "ne": "ne", "ltu": "geu", "geu": "ltu"}
        induction, bound, cmp = src1, src0, flipped[term.attrs["cmp"]]
    else:
        return None

    if defs.get(induction, 0) != 1:
        return None

    increment = None
    for op in block.ops:
        if induction in op.dests:
            increment = op
            break
    if increment is None or increment.guard is not None:
        return None
    step = _constant_step(increment, induction)
    if step is None or step == 0:
        return None

    init = _find_init(func, loop, cfg, induction)
    count = _constant_count(init, step, bound, cmp)
    if count is not None and count <= 0:
        return None  # not actually a counted loop we can reason about
    return TripInfo(induction, init, step, bound, cmp, count, increment, term)


def _constant_step(op: Operation, induction: VReg) -> int | None:
    if op.opcode == Opcode.ADD:
        a, b = op.srcs
        if a == induction and isinstance(b, Imm):
            return b.value
        if b == induction and isinstance(a, Imm):
            return a.value
    if op.opcode == Opcode.SUB:
        a, b = op.srcs
        if a == induction and isinstance(b, Imm):
            return -b.value
    return None


def _find_init(
    func: Function, loop: Loop, cfg: CFGView, induction: VReg
) -> Operand | None:
    """The value of the induction register at loop entry, if syntactically
    evident: the last write in the preheader (``mov i = X``)."""
    pre = loop.preheader(cfg)
    if pre is None:
        return None
    for op in reversed(func.block(pre).ops):
        if induction in op.dests:
            if op.opcode == Opcode.MOV and op.guard is None:
                return op.srcs[0]
            return None
    return None


def _constant_count(
    init: Operand | None, step: int, bound: Operand, cmp: str
) -> int | None:
    if not isinstance(init, Imm) or not isinstance(bound, Imm):
        return None
    i, n = init.value, bound.value
    # loop body runs, then i += step, then "br cmp i, n" loops back
    iterations = 0
    value = i
    while iterations < 1_000_000:
        iterations += 1
        value += step
        from repro.sim.values import compare

        if not compare(cmp, value, n):
            return iterations
    return None
