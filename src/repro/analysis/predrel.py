"""Predicate relation analysis.

Section 3 of the paper: "it is necessary for the compiler to be able to
understand the relations among predicates to perform effective optimization
on and around predication."  The classic example (Figure 2(d)) is that
``(p1) mov r2 = 0`` and ``(p2) add r2 = r2, 1`` may execute in the same
cycle because ``p1`` and ``p2`` come from the complementary destinations of
one define and are therefore *disjoint*.

We track, per straight-line region, which predicate pairs are disjoint
(never simultaneously true) and which are subsets (p true implies q true),
derived syntactically from define patterns:

* ``pred_def cmp p<ut>, q<uf> = a, b`` under guard ``g`` makes p,q disjoint;
  both are subsets of ``g``.
* a ``ut``-type define under guard ``g`` makes its dest a subset of ``g``.
* ``ot`` accumulations make the accumulated dest a *superset* of each
  or-term's condition-under-guard; disjointness is not inferred for them.
"""

from __future__ import annotations


from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode
from repro.ir.registers import VReg


class PredicateRelations:
    """Disjointness / subset facts for the predicates of one block.

    The analysis is flow-insensitive within the block but invalidates a
    predicate's facts when it is redefined, which is sound for the
    single-assignment-ish predicate webs produced by if-conversion.
    """

    def __init__(self, block: BasicBlock) -> None:
        self._disjoint: set[frozenset[VReg]] = set()
        self._subset: set[tuple[VReg, VReg]] = set()  # (sub, super)
        self._scan(block)

    def _invalidate(self, reg: VReg) -> None:
        self._disjoint = {
            pair for pair in self._disjoint if reg not in pair
        }
        self._subset = {
            pair for pair in self._subset if reg not in pair
        }

    def _scan(self, block: BasicBlock) -> None:
        for op in block.ops:
            if op.opcode == Opcode.PRED_SET:
                self._invalidate(op.dests[0])
                continue
            if op.opcode != Opcode.PRED_DEF:
                continue
            for dst in op.dests:
                self._invalidate(dst)
            ptypes = op.attrs["ptypes"]
            guard = op.guard
            # complementary unconditional pair -> disjoint
            if len(op.dests) == 2:
                t0, t1 = ptypes
                d0, d1 = op.dests
                complementary = {("ut", "uf"), ("uf", "ut"), ("ct", "cf"), ("cf", "ct")}
                if (t0, t1) in complementary and d0 != d1:
                    self._disjoint.add(frozenset((d0, d1)))
            for dst, ptype in zip(op.dests, op.attrs["ptypes"]):
                if guard is not None and ptype in ("ut", "uf"):
                    self._subset.add((dst, guard))

        # transitive closure of subsets (small sets; a simple pass suffices)
        changed = True
        while changed:
            changed = False
            for (a, b) in list(self._subset):
                for (c, d) in list(self._subset):
                    if b == c and (a, d) not in self._subset and a != d:
                        self._subset.add((a, d))
                        changed = True
            # subset inherits disjointness: a ⊆ b and b ∦ c  =>  a ∦ c
            for pair in list(self._disjoint):
                b, c = tuple(pair)
                for (a, bb) in list(self._subset):
                    if bb == b and a != c:
                        if frozenset((a, c)) not in self._disjoint:
                            self._disjoint.add(frozenset((a, c)))
                            changed = True
                    if bb == c and a != b:
                        if frozenset((a, b)) not in self._disjoint:
                            self._disjoint.add(frozenset((a, b)))
                            changed = True

    # -- queries -----------------------------------------------------------------

    def disjoint(self, a: VReg | None, b: VReg | None) -> bool:
        """True when operations guarded by ``a`` and ``b`` can never both
        execute.  ``None`` (always-true guard) is disjoint with nothing."""
        if a is None or b is None or a == b:
            return False
        return frozenset((a, b)) in self._disjoint

    def subset(self, a: VReg, b: VReg) -> bool:
        """True when ``a`` true implies ``b`` true."""
        return a == b or (a, b) in self._subset

    def implies_execution(self, a: VReg | None, b: VReg | None) -> bool:
        """True when op guarded by ``a`` executing implies op guarded by
        ``b`` executes (used to prove a conditional write is a kill)."""
        if b is None:
            return True
        if a is None:
            return False
        return self.subset(a, b)

    def disjoint_pairs(self) -> list[tuple[VReg, VReg]]:
        return sorted(
            (tuple(sorted(pair, key=lambda r: (r.kind, r.index)))  # type: ignore[misc]
             for pair in self._disjoint),
            key=lambda pair: (pair[0].index, pair[1].index),
        )
