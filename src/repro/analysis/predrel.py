"""Predicate relation analysis (block-local).

Section 3 of the paper: "it is necessary for the compiler to be able to
understand the relations among predicates to perform effective optimization
on and around predication."  The classic example (Figure 2(d)) is that
``(p1) mov r2 = 0`` and ``(p2) add r2 = r2, 1`` may execute in the same
cycle because ``p1`` and ``p2`` come from the complementary destinations of
one define and are therefore *disjoint*.

We track, per straight-line region, which predicate pairs are disjoint
(never simultaneously true) and which are subsets (p true implies q true),
derived from define patterns:

* ``pred_def cmp p<ut>, q<uf> = a, b`` makes p,q disjoint (the pair is
  written under both guard polarities); an unguarded ``ct``/``cf`` pair
  is likewise disjoint, but a *guarded* one is not — when the guard is
  false both destinations keep their old, unrelated values.
* a ``ut``/``uf``-type define under guard ``g`` makes its dest a subset
  of ``g``.

Redefinitions are classified by the shared semantics in
:mod:`repro.analysis.predfacts`: an unconditional define starts a fresh
web (all standing facts about the destination die), while an ``ot``/``of``
accumulation only *grows* its destination, so "x implies dest" facts
survive it.  The flow-insensitive summary remains sound for the
single-assignment-ish webs produced by if-conversion; the global
:mod:`repro.analysis.predweb` analysis is the flow-sensitive refinement.
"""

from __future__ import annotations


from repro.ir.block import BasicBlock
from repro.ir.opcodes import Opcode
from repro.ir.registers import VReg

from .predfacts import (
    close_pred_facts,
    dfact,
    facts_disjoint,
    facts_subset,
    kill_for_redefinition,
    redefinition_kind,
)

#: complementary destination-type pairs of one define whose values can
#: never both be 1; ``ct``/``cf`` qualify only when the define is
#: unguarded (see module docstring).
_ALWAYS_COMPLEMENTARY = {("ut", "uf"), ("uf", "ut")}
_UNGUARDED_COMPLEMENTARY = {("ct", "cf"), ("cf", "ct")}


def block_pred_facts(block: BasicBlock) -> frozenset:
    """The closed predicate fact set of one block, over register atoms."""
    facts: set = set()
    for op in block.ops:
        if op.opcode == Opcode.PRED_SET:
            kind = redefinition_kind(op.opcode, None, op.guard is not None)
            facts = kill_for_redefinition(facts, op.dests[0], kind)
            continue
        if op.opcode != Opcode.PRED_DEF:
            for dst in op.dests:
                if dst.is_predicate:
                    facts = kill_for_redefinition(
                        facts, dst, redefinition_kind(
                            op.opcode, None, op.guard is not None))
            continue
        ptypes = op.attrs["ptypes"]
        guard = op.guard
        for dst, ptype in zip(op.dests, ptypes):
            kind = redefinition_kind(op.opcode, ptype, guard is not None)
            facts = kill_for_redefinition(facts, dst, kind)
        if len(op.dests) == 2 and op.dests[0] != op.dests[1]:
            pair = (ptypes[0], ptypes[1])
            if pair in _ALWAYS_COMPLEMENTARY or (
                    guard is None and pair in _UNGUARDED_COMPLEMENTARY):
                facts.add(dfact(op.dests[0], op.dests[1]))
        for dst, ptype in zip(op.dests, ptypes):
            if guard is not None and ptype in ("ut", "uf"):
                facts.add(("s", dst, guard))
    return close_pred_facts(facts)


class PredicateRelations:
    """Disjointness / subset facts for the predicates of one block.

    The analysis is flow-insensitive within the block but applies the
    shared redefinition semantics when a predicate is rewritten, which is
    sound for the single-assignment-ish predicate webs produced by
    if-conversion.
    """

    def __init__(self, block: BasicBlock) -> None:
        self._facts = block_pred_facts(block)

    # -- queries -----------------------------------------------------------------

    def disjoint(self, a: VReg | None, b: VReg | None) -> bool:
        """True when operations guarded by ``a`` and ``b`` can never both
        execute.  ``None`` (always-true guard) is disjoint with nothing."""
        if a is None or b is None or a == b:
            return False
        return facts_disjoint(self._facts, a, b)

    def subset(self, a: VReg, b: VReg) -> bool:
        """True when ``a`` true implies ``b`` true."""
        return facts_subset(self._facts, a, b)

    def implies_execution(self, a: VReg | None, b: VReg | None) -> bool:
        """True when op guarded by ``a`` executing implies op guarded by
        ``b`` executes (used to prove a conditional write is a kill)."""
        if b is None:
            return True
        if a is None:
            return False
        return self.subset(a, b)

    def disjoint_pairs(self) -> list[tuple[VReg, VReg]]:
        return sorted(
            (tuple(sorted((a, b), key=lambda r: (r.kind, r.index)))  # type: ignore[misc]
             for kind, a, b in self._facts if kind == "d"),
            key=lambda pair: (pair[0].index, pair[1].index),
        )
