"""Program analyses: dominators, loops, liveness, dependences, profiles."""
