"""Data/control dependence graphs for straight-line regions.

Built over the operation list of one block (a basic block or hyperblock),
optionally with loop-carried (distance-1) edges for modulo scheduling.
Predicate-aware: operations guarded by *disjoint* predicates (from
:class:`~repro.analysis.predrel.PredicateRelations`) do not constrain each
other through register or memory conflicts, which is what lets the
collapsed loop of Figure 2(d) execute the outer-iteration code in parallel
with the inner-iteration code.

Edge semantics for the schedulers::

    time(dst) >= time(src) + latency - II * distance

(acyclic scheduling sets ``II*distance = 0`` because all distances are 0).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.ir.opcodes import NON_SPECULABLE, Opcode
from repro.ir.operation import Operation
from repro.ir.registers import GlobalRef, Imm, VReg

from .liveness import op_unconditional_writes
from .predrel import PredicateRelations


@dataclass(frozen=True)
class DepEdge:
    src: int
    dst: int
    latency: int
    distance: int
    kind: str  # "flow" | "anti" | "output" | "mem" | "ctrl"


@dataclass
class DependenceGraph:
    ops: list[Operation]
    edges: list[DepEdge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.succs: dict[int, list[DepEdge]] = {i: [] for i in range(len(self.ops))}
        self.preds: dict[int, list[DepEdge]] = {i: [] for i in range(len(self.ops))}
        for edge in self.edges:
            self.succs[edge.src].append(edge)
            self.preds[edge.dst].append(edge)

    def add(self, edge: DepEdge) -> None:
        self.edges.append(edge)
        self.succs[edge.src].append(edge)
        self.preds[edge.dst].append(edge)

    def acyclic_edges(self) -> list[DepEdge]:
        return [e for e in self.edges if e.distance == 0]

    def critical_path_length(self) -> int:
        """Longest latency path through distance-0 edges (dependence height)."""
        n = len(self.ops)
        height = [0] * n
        for i in range(n - 1, -1, -1):
            best = 0
            for edge in self.succs[i]:
                if edge.distance == 0:
                    best = max(best, edge.latency + height[edge.dst])
            height[i] = best
        return max(height, default=0) + (1 if self.ops else 0)


class _AddrKey:
    """Symbolic address: (base operand, base version, constant offset)."""

    __slots__ = ("base", "version", "offset", "known")

    def __init__(self, op: Operation, versions: dict[VReg, int]) -> None:
        base, offset = op.srcs[0], op.srcs[1]
        self.known = isinstance(offset, Imm) and isinstance(base, (VReg, GlobalRef, Imm))
        self.offset = offset.value if isinstance(offset, Imm) else 0
        self.base = base
        self.version = versions.get(base, 0) if isinstance(base, VReg) else 0

    def independent(self, other: "_AddrKey") -> bool:
        """Provably non-overlapping word addresses."""
        if not (self.known and other.known):
            return False
        if isinstance(self.base, GlobalRef) and isinstance(other.base, GlobalRef):
            if self.base.name != other.base.name:
                return True
            return self.offset != other.offset
        if self.base == other.base and self.version == other.version:
            return self.offset != other.offset
        return False


def _output_latency(first: Operation, second: Operation) -> int:
    return max(1, first.latency - second.latency + 1)


def _mem_kind(op: Operation) -> str | None:
    if op.opcode == Opcode.LD:
        return "ld"
    if op.opcode == Opcode.ST:
        return "st"
    if op.opcode == Opcode.CALL:
        return "call"
    return None


def build_dependence_graph(
    ops: list[Operation],
    relations: PredicateRelations | None = None,
    loop_carried: bool = False,
    exit_live: dict[int, set[VReg]] | None = None,
) -> DependenceGraph:
    """Dependence graph over ``ops``.

    ``relations`` enables disjoint-guard relaxation.  ``loop_carried`` adds
    distance-1 edges (for single-block loop bodies).  ``exit_live`` maps a
    branch op *index* to the registers live if that branch is taken; it
    permits speculable ops to be hoisted above a side exit when their
    destinations are not live on the exit path.
    """
    n = len(ops)
    graph = DependenceGraph(list(ops))
    if n == 0:
        return graph

    doubled = list(ops) + list(ops) if loop_carried else list(ops)
    seen: set[tuple[int, int, str, int]] = set()

    def emit(src2: int, dst2: int, latency: int, kind: str) -> None:
        distance = 0
        src, dst = src2, dst2
        if loop_carried:
            if src2 >= n and dst2 >= n:
                return  # duplicate of a first-copy edge
            if dst2 >= n:
                distance = 1
                dst -= n
            if src2 >= n:
                return
        if src == dst and distance == 0:
            return
        key = (src, dst, kind, distance)
        if key in seen:
            return
        seen.add(key)
        graph.add(DepEdge(src, dst, latency, distance, kind))

    def guards_disjoint(a: Operation, b: Operation) -> bool:
        return relations is not None and relations.disjoint(a.guard, b.guard)

    # register state
    reaching: dict[VReg, list[int]] = {}
    readers: dict[VReg, list[int]] = {}
    versions: dict[VReg, int] = {}
    # memory state
    prior_stores: list[tuple[int, _AddrKey | None]] = []
    prior_loads: list[tuple[int, _AddrKey | None]] = []
    branch_indices: list[int] = []
    cloop_sets: dict[str, int] = {}

    for i, op in enumerate(doubled):
        # -- register flow/anti deps from reads -------------------------------
        for reg in op.reads():
            for def_idx in reaching.get(reg, []):
                def_op = doubled[def_idx % n] if loop_carried else doubled[def_idx]
                if guards_disjoint(def_op, op) and reg not in (def_op.guard, op.guard):
                    continue
                emit(def_idx, i, def_op.latency, "flow")
            readers.setdefault(reg, []).append(i)

        # -- register output/anti deps from writes -----------------------------
        unconditional = set(op_unconditional_writes(op))
        for reg in op.writes():
            for def_idx in reaching.get(reg, []):
                def_op = doubled[def_idx % n] if loop_carried else doubled[def_idx]
                if guards_disjoint(def_op, op):
                    continue
                emit(def_idx, i, _output_latency(def_op, op), "output")
            for use_idx in readers.get(reg, []):
                if use_idx == i:
                    continue
                use_op = doubled[use_idx % n] if loop_carried else doubled[use_idx]
                if guards_disjoint(use_op, op) and reg != use_op.guard:
                    continue
                emit(use_idx, i, 0, "anti")
            if reg in unconditional:
                reaching[reg] = [i]
                readers[reg] = []
            else:
                reaching.setdefault(reg, []).append(i)
            versions[reg] = versions.get(reg, 0) + 1

        # -- memory dependences ---------------------------------------------------
        kind = _mem_kind(op)
        if kind == "call":
            for st_idx, _ in prior_stores:
                emit(st_idx, i, 1, "mem")
            for ld_idx, _ in prior_loads:
                emit(ld_idx, i, 0, "mem")
            prior_stores.append((i, None))
        elif kind == "st":
            addr = _AddrKey(op, versions)
            for st_idx, st_addr in prior_stores:
                if (st_addr is not None and addr.independent(st_addr)
                        and _same_iteration_only(loop_carried, st_idx, i, n)):
                    continue
                st_op = doubled[st_idx % n] if loop_carried else doubled[st_idx]
                if guards_disjoint(st_op, op):
                    continue
                emit(st_idx, i, 1, "mem")
            for ld_idx, ld_addr in prior_loads:
                if ld_addr is not None and addr.independent(ld_addr):
                    if _same_iteration_only(loop_carried, ld_idx, i, n):
                        continue
                ld_op = doubled[ld_idx % n] if loop_carried else doubled[ld_idx]
                if guards_disjoint(ld_op, op):
                    continue
                emit(ld_idx, i, 0, "mem")
            prior_stores.append((i, addr))
        elif kind == "ld":
            addr = _AddrKey(op, versions)
            for st_idx, st_addr in prior_stores:
                if st_addr is not None and addr.independent(st_addr):
                    if _same_iteration_only(loop_carried, st_idx, i, n):
                        continue
                st_op = doubled[st_idx % n] if loop_carried else doubled[st_idx]
                if guards_disjoint(st_op, op):
                    continue
                emit(st_idx, i, 1, "mem")
            prior_loads.append((i, addr))

        # -- control dependences ------------------------------------------------------
        if op.opcode == Opcode.CLOOP_SET:
            cloop_sets[op.attrs["lc"]] = i
        if op.opcode == Opcode.BR_CLOOP:
            set_idx = cloop_sets.get(op.attrs["lc"])
            if set_idx is not None:
                emit(set_idx, i, 1, "ctrl")
        if op.is_branch:
            for j in range(i - n if loop_carried and i >= n else 0, i):
                emit(j, i, 0, "ctrl")
            branch_indices.append(i)
        else:
            for br_idx in branch_indices:
                if loop_carried and br_idx < i - n:
                    continue
                if _may_hoist_above(op, doubled[br_idx % n] if loop_carried else doubled[br_idx],
                                    br_idx % n if loop_carried else br_idx, exit_live):
                    continue
                emit(br_idx, i, 1, "ctrl")

    return graph


# --------------------------------------------------------------------------
# content-keyed graph memoization
#
# A dependence graph is a pure function of the *content* of an op list
# (opcodes, operands, guards, latencies, loop-counter ids), the
# ``loop_carried`` flag and the ``exit_live`` relaxation map — never of
# operation identity (uids).  Capacity sweeps (``with_buffer`` deep-copies
# the module per capacity), the traditional/aggressive pipelines and the
# checked-mode schedule lint rules therefore rebuild *identical* graphs
# over and over.  This cache keys graphs by content and, on a hit, rebinds
# the stored edge list onto the caller's operations in O(edges).


def op_fingerprint(op: Operation) -> tuple:
    """Content identity of one operation for dependence purposes.

    ``repr`` covers opcode, cmp test, guard, destinations (with predicate
    define types), sources, branch target and callee; ``lc`` is the loop
    counter id that pairs ``cloop_set`` with ``br_cloop``.  Operand reprs
    are unambiguous across kinds (``r3`` / ``3`` / ``@label`` / ``$glob``).
    """
    return (repr(op), op.attrs.get("lc"))


def ops_fingerprint(ops: list[Operation]) -> tuple:
    """Hashable content key of an op list (order-sensitive)."""
    return tuple(op_fingerprint(op) for op in ops)


def exit_live_fingerprint(exit_live: dict[int, set[VReg]] | None) -> tuple | None:
    """Hashable content key of a side-exit liveness map."""
    if exit_live is None:
        return None
    return tuple(sorted(
        (index, tuple(sorted(repr(reg) for reg in regs)))
        for index, regs in exit_live.items()
    ))


@dataclass
class DepCacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


#: bounded LRU over edge tuples; ~a few KB per entry, so 4096 entries is
#: comfortably more than a full benchmark grid ever produces
_CACHE_LIMIT = 4096

_graph_cache: "OrderedDict[tuple, tuple[DepEdge, ...]]" = OrderedDict()
_cache_stats = DepCacheStats()
_cache_enabled = True


def set_dependence_cache_enabled(enabled: bool) -> None:
    """Toggle memoization (the legacy/baseline path disables it)."""
    global _cache_enabled
    _cache_enabled = bool(enabled)


def dependence_cache_enabled() -> bool:
    return _cache_enabled


def dependence_cache_stats() -> DepCacheStats:
    return _cache_stats


def clear_dependence_cache() -> None:
    _graph_cache.clear()


def dependence_graph(
    ops: list[Operation],
    relations: PredicateRelations | None = None,
    loop_carried: bool = False,
    exit_live: dict[int, set[VReg]] | None = None,
    fingerprint: tuple | None = None,
) -> DependenceGraph:
    """Content-cached :func:`build_dependence_graph`.

    On a hit the stored edges are rebound onto ``ops`` (edges are index
    based and immutable, so sharing them is sound); on a miss the graph is
    built and its edge list stored.  ``fingerprint`` lets a caller that
    already computed :func:`ops_fingerprint` (e.g. to key its own schedule
    cache) avoid recomputing it.
    """
    if not _cache_enabled:
        return build_dependence_graph(ops, relations=relations,
                                      loop_carried=loop_carried,
                                      exit_live=exit_live)
    if fingerprint is None:
        fingerprint = ops_fingerprint(ops)
    key = (fingerprint, loop_carried, exit_live_fingerprint(exit_live))
    edges = _graph_cache.get(key)
    if edges is not None:
        _graph_cache.move_to_end(key)
        _cache_stats.hits += 1
        return DependenceGraph(list(ops), list(edges))
    _cache_stats.misses += 1
    graph = build_dependence_graph(ops, relations=relations,
                                   loop_carried=loop_carried,
                                   exit_live=exit_live)
    _graph_cache[key] = tuple(graph.edges)
    if len(_graph_cache) > _CACHE_LIMIT:
        _graph_cache.popitem(last=False)
        _cache_stats.evictions += 1
    return graph


def _same_iteration_only(loop_carried: bool, src: int, dst: int, n: int) -> bool:
    """Address-based disambiguation is only valid within one iteration: in
    the doubled-op encoding, cross-copy pairs are distance-1 and the base
    register version comparison is meaningless across the back edge."""
    if not loop_carried:
        return True
    return (src < n) == (dst < n)


def _may_hoist_above(
    op: Operation,
    branch: Operation,
    branch_index: int,
    exit_live: dict[int, set[VReg]] | None,
) -> bool:
    """Can ``op`` be scheduled at/before ``branch`` (control speculation)?"""
    if op.opcode in NON_SPECULABLE:
        return False
    if exit_live is None:
        return False
    live = exit_live.get(branch_index)
    if live is None:
        return False
    return not any(dst in live for dst in op.dests)
