"""Liveness analysis, predicate-aware.

The twist relative to textbook liveness is conditional writes: a *guarded*
operation may be nullified, so its destinations are not killed along all
paths; similarly or-/and-/conditional-type predicate defines update their
destination only sometimes.  Only *unconditional* writes (unguarded ops,
and the ``ut``/``uf`` destinations of predicate defines, which Table 2
updates regardless of guard value) enter the kill set.

The fixpoint is an instance of the generic worklist engine
(:mod:`repro.analysis.dataflow`): a backward may-problem whose meet is
set union.  The per-block transfer walks operations rather than using a
use/def summary because hyperblocks contain *mid-block side exits* — a
kill below such an exit must not mask liveness on the exit path, so the
exit target's live-in is unioned back in at the branch position (the
transfer peeks at other blocks' outputs; the engine re-arms us when they
move).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.opcodes import Opcode
from repro.ir.operation import Operation
from repro.ir.preddef import always_writes
from repro.ir.registers import VReg

from .cfgview import CFGView
from .dataflow import BACKWARD, DataflowProblem, DataflowResult, solve


def op_unconditional_writes(op: Operation) -> list[VReg]:
    """Destinations that are written on *every* execution of ``op``."""
    if op.opcode == Opcode.PRED_DEF:
        return [
            dst
            for dst, ptype in zip(op.dests, op.attrs["ptypes"])
            if always_writes(ptype)
        ]
    if op.guard is not None:
        return []
    return list(op.dests)


@dataclass
class LivenessInfo:
    """Per-block live-in/out sets."""

    live_in: dict[str, set[VReg]] = field(default_factory=dict)
    live_out: dict[str, set[VReg]] = field(default_factory=dict)

    def live_at_entry(self, label: str) -> set[VReg]:
        return self.live_in.get(label, set())

    def live_at_exit(self, label: str) -> set[VReg]:
        return self.live_out.get(label, set())


class _LivenessProblem(DataflowProblem):
    """Backward may-liveness: input = live-out, output = live-in."""

    direction = BACKWARD
    name = "liveness"

    def __init__(self, func: Function) -> None:
        self.func = func

    def boundary(self) -> set[VReg]:
        return set()

    def meet(self, values: list[set[VReg]]) -> set[VReg]:
        out: set[VReg] = set()
        for value in values:
            out |= value
        return out

    def transfer(self, label: str, value: set[VReg],
                 result: DataflowResult) -> set[VReg]:
        return _transfer(self.func, self.func.block(label), value,
                         result.output)


def liveness(func: Function, cfg: CFGView | None = None) -> LivenessInfo:
    """Backward may-liveness over the CFG."""
    if cfg is None:
        cfg = CFGView(func)
    result = solve(_LivenessProblem(func), cfg)
    return LivenessInfo(
        live_in={label: result.output.get(label, set())
                 for label in cfg.nodes},
        live_out={label: result.input.get(label, set())
                  for label in cfg.nodes},
    )


def _transfer(
    func: Function,
    block: BasicBlock,
    live_out: set[VReg],
    live_in_map: dict[str, set[VReg]],
) -> set[VReg]:
    """Backward per-op transfer with side-exit revival."""
    live = set(live_out)
    for op in reversed(block.ops):
        if (op.is_branch and op.target is not None
                and func.has_block(op.target)):
            live |= live_in_map.get(op.target, set())
        live -= set(op_unconditional_writes(op))
        live |= set(op.reads())
    return live


def per_op_live_out(
    block: BasicBlock, exit_live: set[VReg]
) -> list[set[VReg]]:
    """Live-after sets for each operation of a straight-line block.

    ``exit_live`` is the set live at the block's end (from
    :func:`liveness`).  Side exits are *not* folded in here — callers that
    care (scheduling across hyperblock side exits) union in the live-in of
    each exit target separately.
    """
    live = set(exit_live)
    result: list[set[VReg]] = [set()] * len(block.ops)
    for i in range(len(block.ops) - 1, -1, -1):
        op = block.ops[i]
        result[i] = set(live)
        live -= set(op_unconditional_writes(op))
        live |= set(op.reads())
    return result


def max_register_pressure(
    func: Function, kind: str, info: LivenessInfo | None = None
) -> int:
    """Maximum simultaneously-live registers of class ``kind`` at any point."""
    if info is None:
        info = liveness(func)
    peak = 0
    for block in func.blocks:
        exit_live = {r for r in info.live_out[block.label] if r.kind == kind}
        live = set(exit_live)
        peak = max(peak, len(live))
        for op in reversed(block.ops):
            live -= {r for r in op_unconditional_writes(op) if r.kind == kind}
            live |= {r for r in op.reads() if r.kind == kind}
            peak = max(peak, len(live))
    return peak
