"""An immutable adjacency snapshot of a function's CFG.

Transformations restructure block layouts aggressively, so analyses never
cache across passes; they take a fresh :class:`CFGView` built from the
function's current layout.
"""

from __future__ import annotations

from repro.ir.function import Function


class CFGView:
    """Successor/predecessor adjacency over block labels."""

    def __init__(self, func: Function) -> None:
        self.func = func
        self.nodes: list[str] = [block.label for block in func.blocks]
        self.succs: dict[str, list[str]] = {}
        self.preds: dict[str, list[str]] = {label: [] for label in self.nodes}
        for block in func.blocks:
            succs = func.successors(block)
            self.succs[block.label] = succs
            for succ in succs:
                self.preds[succ].append(block.label)

    @property
    def entry(self) -> str:
        return self.nodes[0]

    def reachable(self) -> set[str]:
        """Labels reachable from the entry."""
        seen: set[str] = set()
        stack = [self.entry]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.succs[label])
        return seen

    def reverse_postorder(self) -> list[str]:
        """Reverse postorder over reachable nodes (good dataflow order)."""
        seen: set[str] = set()
        order: list[str] = []

        def visit(label: str) -> None:
            stack = [(label, iter(self.succs[label]))]
            seen.add(label)
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succs[succ])))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        order.reverse()
        return order
