"""Shared predicate-fact semantics: redefinition kinds, gen, closure.

Both predicate relation analyses — the block-local
:class:`~repro.analysis.predrel.PredicateRelations` and the global
:class:`~repro.analysis.predweb.PredicateWeb` — reason in the same fact
language and must agree on what a redefinition does to standing facts
(the ``ot``-accumulation question: an or-type define *grows* its
destination, so "x implies dest" facts survive it while "dest implies x"
facts do not).  This module owns that vocabulary once; the two analyses
differ only in their atoms (virtual registers locally, definition sites
globally) and in how facts flow.

Fact language (atoms are any hashable, orderable-by-``repr`` values):

``("s", a, b)``
    ``a`` true implies ``b`` true (subset of executions).
``("d", a, b)``
    ``a`` and ``b`` are never both true (disjoint); stored with the
    atoms in normalized order, build via :func:`dfact`.
``("z", a)``
    ``a`` is known false (the ``pred_set p = 0`` web roots); implies
    disjointness with everything and subset of everything, applied at
    query time rather than materialized.

Redefinition kinds (Table 2 of the paper, by destination type):

=============  ==============================================  =========
kind           writes                                          fact kill
=============  ==============================================  =========
REPLACE        always, a fresh value (``ut``/``uf``; unguarded  all facts
               ``ct``/``cf``/``pred_set``)                     about dest
STRENGTHEN     only ones (``ot``/``of``) — dest grows           keep x⊆dest
WEAKEN         only zeros (``at``/``af``) — dest shrinks        keep dest⊆x,
                                                               disjoint, zero
MERGE          sometimes, a fresh value (guarded ``ct``/``cf``  all facts
               /``pred_set``; opaque writes)                   about dest
=============  ==============================================  =========
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.ir.opcodes import Opcode

from .dataflow import close_facts

REPLACE = "replace"
STRENGTHEN = "strengthen"
WEAKEN = "weaken"
MERGE = "merge"


def dfact(a: Hashable, b: Hashable) -> tuple:
    """A normalized disjointness fact."""
    a, b = sorted((a, b), key=repr)
    return ("d", a, b)


def redefinition_kind(opcode: Opcode, ptype: str | None,
                      guarded: bool) -> str:
    """How a write to a predicate register treats the standing value."""
    if opcode == Opcode.PRED_SET:
        return MERGE if guarded else REPLACE
    if opcode == Opcode.PRED_DEF:
        if ptype in ("ut", "uf"):
            return REPLACE  # Table 2: written under both guard polarities
        if ptype in ("ot", "of"):
            return STRENGTHEN
        if ptype in ("at", "af"):
            return WEAKEN
        if ptype in ("ct", "cf"):
            return MERGE if guarded else REPLACE
        raise ValueError(f"unknown predicate define type {ptype!r}")
    return MERGE  # opaque write: assume nothing


def kill_for_redefinition(facts: set, atom: Hashable, kind: str) -> set:
    """Facts surviving a redefinition of ``atom`` of the given kind."""
    if kind in (REPLACE, MERGE):
        return {f for f in facts if atom not in f[1:]}
    if kind == STRENGTHEN:
        # dest only gains executions: x ⊆ dest survives, all else dies
        return {
            f for f in facts
            if atom not in f[1:] or (f[0] == "s" and f[2] == atom)
        }
    if kind == WEAKEN:
        # dest only loses executions: dest ⊆ x, disjointness and known-
        # zero survive, x ⊆ dest dies
        return {
            f for f in facts
            if atom not in f[1:]
            or (f[0] == "s" and f[1] == atom)
            or f[0] in ("d", "z")
        }
    raise ValueError(f"unknown redefinition kind {kind!r}")


# -- closure ------------------------------------------------------------------

def _rule_subset_transitive(facts: set) -> Iterable[tuple]:
    supers: dict = {}
    for f in facts:
        if f[0] == "s":
            supers.setdefault(f[1], []).append(f[2])
    for f in facts:
        if f[0] == "s":
            for d in supers.get(f[2], ()):
                if f[1] != d:
                    yield ("s", f[1], d)


def _rule_subset_inherits_disjoint(facts: set) -> Iterable[tuple]:
    # a ⊆ b and b ∦ c  =>  a ∦ c
    subs: dict = {}
    for f in facts:
        if f[0] == "s":
            subs.setdefault(f[2], []).append(f[1])
    for f in facts:
        if f[0] == "d":
            _, b, c = f
            for a in subs.get(b, ()):
                if a != c:
                    yield dfact(a, c)
            for a in subs.get(c, ()):
                if a != b:
                    yield dfact(a, b)


def _rule_zero_propagates(facts: set) -> Iterable[tuple]:
    # a ⊆ b and b known-zero  =>  a known-zero
    zeros = {f[1] for f in facts if f[0] == "z"}
    for f in facts:
        if f[0] == "s" and f[2] in zeros:
            yield ("z", f[1])


CLOSURE_RULES = (
    _rule_subset_transitive,
    _rule_subset_inherits_disjoint,
    _rule_zero_propagates,
)


def close_pred_facts(facts: set) -> frozenset:
    """Saturate a predicate fact set under the closure rules."""
    return close_facts(facts, CLOSURE_RULES)


# -- queries ------------------------------------------------------------------

def facts_disjoint(facts, a: Hashable, b: Hashable) -> bool:
    """``a`` and ``b`` provably never both true (``a != b`` assumed)."""
    return (dfact(a, b) in facts
            or ("z", a) in facts or ("z", b) in facts)


def facts_subset(facts, a: Hashable, b: Hashable) -> bool:
    """``a`` true provably implies ``b`` true."""
    return a == b or ("s", a, b) in facts or ("z", a) in facts
