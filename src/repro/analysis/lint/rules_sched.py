"""Schedule-phase lint rules: list- and modulo-schedule legality.

Each rule re-derives the constraint system the scheduler was supposed to
satisfy — the predicate-aware dependence graph (with the side-exit
hoisting relaxation), the machine's slot-capability table, the modulo
reservation table, and the MVE lifetime bound — and checks the *stored*
schedule against it.  A schedule that passes is a certifiable artifact in
the spirit of Roorda's SMT-checked pipelining: legality is decidable from
the schedule alone, independent of how it was constructed.
"""

from __future__ import annotations

from repro.analysis.dependence import dependence_graph
from repro.analysis.liveness import liveness
from repro.analysis.predrel import PredicateRelations
from repro.ir.opcodes import Opcode, unit_of
from repro.sched.list_sched import exit_live_map
from repro.sched.modulo import required_mve_factor

from .diagnostics import Severity
from .engine import LintTarget, rule

#: or-type predicate contributions may co-issue writes to one destination
#: (they only ever deposit the same value); likewise the and-types.
_SAME_VALUE_PTYPES = ({"ot", "of"}, {"at", "af"})


def _real_ops(block):
    return [op for op in block.ops if op.opcode != Opcode.NOP]


def _scheduled_blocks(target: LintTarget):
    """Yield (func, block, schedule) for every stored list schedule."""
    if target.schedules is None:
        return
    for func in target.selected_functions():
        per_func = target.schedules.get(func.name)
        if per_func is None:
            continue
        for block in func.blocks:
            sched = per_func.get(block.label)
            if sched is not None:
                yield func, block, sched


def _modulo_loops(target: LintTarget):
    """Yield (func, block, modulo schedule) for every stored kernel."""
    if target.modulo is None:
        return
    for func in target.selected_functions():
        for (fname, header), sched in target.modulo.items():
            if fname == func.name and func.has_block(header):
                yield func, func.block(header), sched


@rule("sched-complete", Severity.ERROR, "sched")
def check_sched_complete(target: LintTarget, make) -> None:
    """A block operation is missing from (or duplicated in) its schedule."""
    for func, block, sched in _scheduled_blocks(target):
        placed = set(sched.placement)
        for index, op in enumerate(_real_ops(block)):
            if op.uid not in placed:
                make(f"{op!r} has no placement in the block schedule",
                     function=func.name, block=block.label, index=index)
        bundled = sum(1 for bundle in sched.bundles
                      for op in bundle.ops.values()
                      if op.opcode != Opcode.NOP)
        if bundled != len(placed):
            make(f"schedule bundles hold {bundled} ops but the placement "
                 f"map has {len(placed)}", function=func.name,
                 block=block.label)


@rule("sched-resource", Severity.ERROR, "sched")
def check_sched_resource(target: LintTarget, make) -> None:
    """An operation is issued in a slot its unit cannot execute in."""
    machine = target.machine
    for func, block, sched in _scheduled_blocks(target):
        for bundle in sched.bundles:
            for slot, op in bundle.in_slot_order():
                if op.opcode == Opcode.NOP:
                    continue
                if not 0 <= slot < machine.width:
                    make(f"{op!r} issues in slot {slot} on a "
                         f"{machine.width}-wide machine",
                         function=func.name, block=block.label)
                elif unit_of(op.opcode) not in machine.slot_units[slot]:
                    make(f"{op!r} ({unit_of(op.opcode).value}) issues in "
                         f"slot {slot} which offers "
                         f"{sorted(u.value for u in machine.slot_units[slot])}",
                         function=func.name, block=block.label)
                placement = sched.placement.get(op.uid)
                if placement is not None and (
                        placement.cycle != bundle.cycle
                        or placement.slot != slot):
                    make(f"{op!r} bundled at cycle {bundle.cycle} slot "
                         f"{slot} but placed at cycle {placement.cycle} "
                         f"slot {placement.slot}",
                         function=func.name, block=block.label)


@rule("sched-latency", Severity.ERROR, "sched")
def check_sched_latency(target: LintTarget, make) -> None:
    """A scheduled operation issues before a dependence latency has elapsed."""
    for func in target.selected_functions():
        per_func = (target.schedules or {}).get(func.name)
        if not per_func:
            continue
        live = liveness(func)
        for block in func.blocks:
            sched = per_func.get(block.label)
            if sched is None:
                continue
            ops = _real_ops(block)
            graph = dependence_graph(
                ops, relations=PredicateRelations(block),
                exit_live=exit_live_map(func, block, live))
            for edge in graph.edges:
                if edge.distance != 0:
                    continue
                src, dst = ops[edge.src], ops[edge.dst]
                if src.uid not in sched.placement or \
                        dst.uid not in sched.placement:
                    continue  # sched-complete reports the gap
                gap = sched.cycle_of(dst) - sched.cycle_of(src)
                if gap < edge.latency:
                    make(f"{dst!r} issues {gap} cycle(s) after {src!r}; "
                         f"the {edge.kind} dependence needs {edge.latency}",
                         function=func.name, block=block.label,
                         index=edge.dst)


def _same_value_write(op_a, reg_a, op_b, reg_b) -> bool:
    """Both writes deposit a guaranteed-equal value (or-/and-type pairs)."""
    if reg_a != reg_b:
        return False
    ptypes = set()
    for op, reg in ((op_a, reg_a), (op_b, reg_b)):
        if op.opcode != Opcode.PRED_DEF:
            return False
        for dst, ptype in zip(op.dests, op.attrs["ptypes"]):
            if dst == reg:
                ptypes.add(ptype)
    return any(ptypes <= allowed for allowed in _SAME_VALUE_PTYPES)


@rule("pred-write-overlap", Severity.ERROR, "sched")
def check_pred_write_overlap(target: LintTarget, make) -> None:
    """Two co-issued writes hit one register under non-disjoint predicates."""
    for func, block, sched in _scheduled_blocks(target):
        relations = PredicateRelations(block)
        by_op = {op.uid: op for op in block.ops}
        for bundle in sched.bundles:
            writers: dict = {}
            for _slot, op in bundle.in_slot_order():
                op = by_op.get(op.uid, op)
                for reg in op.writes():
                    writers.setdefault(reg, []).append(op)
            for reg, ops in writers.items():
                for i in range(len(ops)):
                    for j in range(i + 1, len(ops)):
                        a, b = ops[i], ops[j]
                        if relations.disjoint(a.guard, b.guard):
                            continue
                        if _same_value_write(a, reg, b, reg):
                            continue
                        make(f"{a!r} and {b!r} both write {reg!r} in cycle "
                             f"{bundle.cycle} under non-disjoint guards",
                             function=func.name, block=block.label)


@rule("slot-route-coverage", Severity.ERROR, "sched")
def check_slot_route_coverage(target: LintTarget, make) -> None:
    """A predicate-sensitive consumer issues in a slot its guard's define
    does not route to (the standing predicate never reaches it)."""
    for func, block, sched in _scheduled_blocks(target):
        routes: dict = {}
        for op in block.ops:
            routing = op.attrs.get("slot_route")
            if routing is not None:
                for dst in op.dests:
                    if repr(dst) in routing:
                        routes[dst] = set(routing[repr(dst)])
        if not routes:
            continue
        for index, op in enumerate(block.ops):
            if not op.attrs.get("psens") or op.guard is None:
                continue
            placement = sched.placement.get(op.uid)
            routed = routes.get(op.guard)
            if placement is None or routed is None:
                continue
            if placement.slot not in routed:
                make(f"{op!r} issues in slot {placement.slot} but "
                     f"{op.guard!r} is routed only to {sorted(routed)}",
                     function=func.name, block=block.label, index=index)


@rule("modulo-stale", Severity.WARNING, "sched")
def check_modulo_stale(target: LintTarget, make) -> None:
    """A stored modulo schedule no longer matches its loop body's ops."""
    for func, block, sched in _modulo_loops(target):
        body = {op.uid for op in _real_ops(block)}
        scheduled = set(sched.times)
        if body != scheduled:
            make(f"kernel schedule covers {len(scheduled)} ops but the "
                 f"loop body has {len(body)}; the block changed after "
                 f"modulo scheduling", function=func.name, block=block.label)


def _fresh_modulo_loops(target: LintTarget):
    """Modulo loops whose stored schedule still matches the IR (the stale
    ones are reported once by modulo-stale, not re-checked)."""
    for func, block, sched in _modulo_loops(target):
        ops = _real_ops(block)
        if {op.uid for op in ops} == set(sched.times):
            yield func, block, sched, ops


@rule("modulo-resource", Severity.ERROR, "sched")
def check_modulo_resource(target: LintTarget, make) -> None:
    """A kernel violates the modulo reservation table or slot capabilities."""
    machine = target.machine
    for func, block, sched, ops in _fresh_modulo_loops(target):
        mrt: dict = {}
        for op in ops:
            time, slot = sched.times[op.uid], sched.slots[op.uid]
            if slot not in machine.slots_for_op(op.opcode):
                make(f"{op!r} issues in slot {slot} which cannot execute "
                     f"{unit_of(op.opcode).value}", function=func.name,
                     block=block.label)
            key = (slot, time % sched.ii)
            if key in mrt:
                make(f"{op!r} and {mrt[key]!r} collide in slot {slot} at "
                     f"cycle {time % sched.ii} (mod II={sched.ii})",
                     function=func.name, block=block.label)
            else:
                mrt[key] = op


@rule("modulo-latency", Severity.ERROR, "sched")
def check_modulo_latency(target: LintTarget, make) -> None:
    """A kernel breaks a (possibly loop-carried) dependence latency."""
    for func, block, sched, ops in _fresh_modulo_loops(target):
        graph = dependence_graph(
            ops, relations=PredicateRelations(block), loop_carried=True)
        for edge in graph.edges:
            src, dst = ops[edge.src], ops[edge.dst]
            slack = (sched.times[dst.uid] + sched.ii * edge.distance
                     - sched.times[src.uid])
            if slack < edge.latency:
                make(f"{dst!r} issues {slack} cycle(s) after {src!r} "
                     f"(distance {edge.distance}, II={sched.ii}); the "
                     f"{edge.kind} dependence needs {edge.latency}",
                     function=func.name, block=block.label)


@rule("modulo-mve", Severity.ERROR, "sched")
def check_modulo_mve(target: LintTarget, make) -> None:
    """A kernel's MVE factor understates its register lifetimes — its
    buffer footprint (and register overlap across iterations) is wrong."""
    for func, block, sched, ops in _fresh_modulo_loops(target):
        graph = dependence_graph(
            ops, relations=PredicateRelations(block), loop_carried=True)
        index_times = {i: sched.times[op.uid] for i, op in enumerate(ops)}
        needed = required_mve_factor(ops, graph, index_times, sched.ii)
        if sched.mve_factor < needed:
            make(f"schedule claims MVE factor {sched.mve_factor} but "
                 f"register lifetimes need {needed} kernel copies at "
                 f"II={sched.ii}", function=func.name, block=block.label)
