"""``python -m repro.analysis.lint`` — sweep the bench corpus through the
sanitizer.

Each (benchmark, pipeline) pair is compiled (through the runner's disk
cache), retargeted at ``--capacity``, and linted across all phases.  Every
diagnostic prints in ``severity rule func/block#index: message`` form;
``--json`` emits the structured records instead.  Exit status is 1 if any
error-severity diagnostic fired, 2 on bad arguments — which is what lets
CI fail on a semantic regression no functional test happens to trip over.

Examples::

    python -m repro.analysis.lint --list-rules
    python -m repro.analysis.lint --benchmarks adpcm_dec --pipelines aggressive
    python -m repro.analysis.lint --json - --quiet

This module (not the rule engine) owns the dependency on the pipeline,
runner and bench registry, keeping :mod:`repro.analysis.lint.engine`
importable from :mod:`repro.pipeline` without a cycle.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import benchmark_names
from repro.pipeline import CheckedModeError, with_buffer
from repro.runner.cache import default_cache
from repro.runner.parallel import PIPELINES, compile_base
from repro.runner.summary import format_table

from .diagnostics import Severity
from .engine import all_rules, get_rule, lint_compiled


def _csv(value: str) -> list[str]:
    return [item.strip() for item in value.split(",") if item.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Semantic sanitizer sweep over the benchmark corpus.",
    )
    parser.add_argument("--benchmarks", type=_csv, default=None,
                        metavar="NAME[,NAME...]",
                        help="benchmark subset (default: the whole Table 1 "
                             "suite)")
    parser.add_argument("--pipelines", type=_csv, default=list(PIPELINES),
                        metavar="PIPE[,PIPE...]",
                        help="traditional, aggressive or both (default both)")
    parser.add_argument("--capacity", type=int, default=256,
                        help="buffer capacity in ops; 0 disables the buffer "
                             "(default 256)")
    parser.add_argument("--rules", type=_csv, default=None,
                        metavar="ID[,ID...]",
                        help="run only these rule ids (default: all)")
    parser.add_argument("--exclude-rules", type=_csv, default=None,
                        metavar="ID[,ID...]",
                        help="skip these rule ids (applied after --rules)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--checked", action="store_true",
                        help="also compile in per-pass checked mode (a "
                             "CheckedModeError reports as a failure)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (default: "
                             "REPRO_CACHE_DIR or .repro_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk cache entirely")
    parser.add_argument("--json", dest="json_path", default=None,
                        metavar="FILE",
                        help="write diagnostics JSON here ('-' = stdout)")
    parser.add_argument("--table", dest="table_path", default=None,
                        metavar="FILE",
                        help="also write the diagnostics + summary table "
                             "here (a CI-artifact-friendly text report)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-diagnostic lines and the summary "
                             "table")
    return parser


def _print_rules() -> None:
    rows = [[r.rule_id, r.phase, r.severity.value, r.doc]
            for r in all_rules()]
    print(format_table(["rule", "phase", "severity", "description"], rows,
                       f"{len(rows)} registered lint rules"))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0

    names = args.benchmarks or benchmark_names()
    known = set(benchmark_names())
    for name in names:
        if name not in known:
            print(f"unknown benchmark {name!r} (choose from "
                  f"{', '.join(sorted(known))})", file=sys.stderr)
            return 2
    for pipeline in args.pipelines:
        if pipeline not in PIPELINES:
            print(f"unknown pipeline {pipeline!r} (choose from "
                  f"{', '.join(PIPELINES)})", file=sys.stderr)
            return 2
    try:
        for rule_id in (args.rules or []) + (args.exclude_rules or []):
            get_rule(rule_id)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    rule_ids = args.rules
    if args.exclude_rules:
        excluded = set(args.exclude_rules)
        rule_ids = [r.rule_id for r in all_rules()
                    if (args.rules is None or r.rule_id in args.rules)
                    and r.rule_id not in excluded]

    cache = default_cache(args.cache_dir, enabled=not args.no_cache)
    capacity = args.capacity or None
    records = []
    rows = []
    lines = []
    failed = False
    for name in names:
        for pipeline in args.pipelines:
            label = f"{name}/{pipeline}"
            try:
                base = compile_base(name, pipeline, cache=cache,
                                    checked=True if args.checked else None)
                compiled = with_buffer(base, capacity)
            except CheckedModeError as exc:
                failed = True
                lines.append(f"{label}: {exc}")
                if not args.quiet:
                    print(lines[-1])
                records.extend(
                    dict(d.to_dict(), benchmark=name, pipeline=pipeline)
                    for d in exc.diagnostics)
                rows.append([name, pipeline, len(exc.diagnostics), 0,
                             f"CHECKED ({exc.pass_name})"])
                continue
            diags = lint_compiled(compiled, rule_ids=rule_ids)
            errors = sum(1 for d in diags if d.severity is Severity.ERROR)
            warnings = sum(1 for d in diags
                           if d.severity is Severity.WARNING)
            failed = failed or errors > 0
            for d in diags:
                lines.append(f"{label}: {d.format()}")
                if not args.quiet:
                    print(lines[-1])
            records.extend(
                dict(d.to_dict(), benchmark=name, pipeline=pipeline)
                for d in diags)
            rows.append([name, pipeline, errors, warnings,
                         "FAIL" if errors else "ok"])

    table = format_table(
        ["benchmark", "pipeline", "errors", "warnings", "status"],
        rows, f"lint sweep at capacity {capacity or 'none'}")
    if not args.quiet:
        print(table)
    if args.table_path:
        report = "\n".join([*lines, table]) + "\n"
        if args.table_path == "-":
            print(report, end="")
        else:
            Path(args.table_path).write_text(report)
    if args.json_path:
        payload = json.dumps(records, indent=2)
        if args.json_path == "-":
            print(payload)
        else:
            Path(args.json_path).write_text(payload + "\n")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
