"""Structured lint diagnostics.

A :class:`Diagnostic` replaces the bare strings of
:class:`~repro.ir.verify.VerificationError` with a machine-readable record:
which rule fired, how severe it is, *where* (function/block#index, the same
coordinate format :func:`repro.ir.printer.op_location` prints and
``format_function`` annotates), and — in checked mode — which compiler pass
introduced the violation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from enum import Enum

from repro.ir.printer import op_location


class Severity(str, Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    rule: str
    severity: Severity
    message: str
    function: str | None = None
    block: str | None = None
    index: int | None = None
    passname: str | None = None  # pass provenance (checked mode)

    @property
    def location(self) -> str:
        return op_location(self.function, self.block, self.index)

    def format(self) -> str:
        provenance = f" [pass={self.passname}]" if self.passname else ""
        return (f"{self.severity.value} {self.rule} "
                f"{self.location}: {self.message}{provenance}")

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["severity"] = self.severity.value
        payload["location"] = self.location
        return payload


def max_severity(diagnostics: list[Diagnostic]) -> Severity | None:
    """The worst severity present, or ``None`` for a clean report."""
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)


def errors_only(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    return [d for d in diagnostics if d.severity is Severity.ERROR]
