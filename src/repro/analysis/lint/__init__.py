"""Semantic IR sanitizer: rule-based lint over IR, schedules, and the
loop-buffer assignment.

Usage::

    from repro.analysis.lint import lint_compiled, lint_module, Severity

    diags = lint_compiled(compiled)           # all phases
    errors = [d for d in diags if d.severity is Severity.ERROR]

or from the shell (sweeps the bench corpus through both pipelines)::

    python -m repro.analysis.lint --json -

See DESIGN.md for the rule catalog.  Checked mode
(``compile_*(..., checked=True)`` or ``REPRO_CHECKED=1``) runs these rules
after every pass and attributes the first violation to the offending pass.
"""

from . import (  # noqa: F401  (register rules)
    rules_buffer,
    rules_ir,
    rules_pred,
    rules_sched,
)
from .diagnostics import Diagnostic, Severity, errors_only, max_severity
from .engine import (
    PHASES,
    LintTarget,
    Rule,
    all_rules,
    get_rule,
    lint_compiled,
    lint_module,
    rule,
    run_rules,
)

__all__ = [
    "Diagnostic",
    "LintTarget",
    "PHASES",
    "Rule",
    "Severity",
    "all_rules",
    "errors_only",
    "get_rule",
    "lint_compiled",
    "lint_module",
    "max_severity",
    "rule",
    "run_rules",
]
