"""Buffer-phase lint rules: loop-buffer assignment invariants.

The Table 3 contract between the compiler and the buffer hardware:
assigned segments fit the buffer, every assignment is realized by exactly
one ``rec_cloop``/``rec_wloop`` in the IR (and vice versa), recording
operations agree with the loop-back branch they pair with, and segment
lengths equal the footprint the scheduler computed (kernel ops × MVE).
"""

from __future__ import annotations

from repro.ir.opcodes import Opcode

from .diagnostics import Severity
from .engine import LintTarget, rule

_REC_OPS = (Opcode.REC_CLOOP, Opcode.REC_WLOOP)
_EXEC_OPS = (Opcode.EXEC_CLOOP, Opcode.EXEC_WLOOP)


def _buffer_ops(target: LintTarget, opcodes):
    """Yield (func, block, index, op) for buffer-management operations."""
    for func in target.selected_functions():
        for block in func.blocks:
            for index, op in enumerate(block.ops):
                if op.opcode in opcodes:
                    yield func, block, index, op


@rule("buffer-capacity", Severity.ERROR, "buffer")
def check_buffer_capacity(target: LintTarget, make) -> None:
    """An assigned buffer segment lies outside [0, capacity)."""
    assignment = target.assignment
    if assignment is None:
        return
    capacity = target.buffer_capacity
    for a in assignment.assigned:
        where = dict(function=a.func, block=a.header)
        if a.length <= 0:
            make(f"loop {a.header!r} is assigned a {a.length}-op segment",
                 **where)
        if a.offset < 0:
            make(f"loop {a.header!r} is assigned negative offset "
                 f"{a.offset}", **where)
        if capacity is not None and a.offset + a.length > capacity:
            make(f"loop {a.header!r} occupies [{a.offset}, "
                 f"{a.offset + a.length}) beyond the {capacity}-op buffer",
                 **where)


@rule("buffer-residency", Severity.ERROR, "buffer")
def check_buffer_residency(target: LintTarget, make) -> None:
    """The assignment table and the IR's rec operations disagree."""
    assignment = target.assignment
    recs: dict[tuple[str, str], list] = {}
    for func, block, index, op in _buffer_ops(target, _REC_OPS):
        key = (func.name, op.attrs.get("loop"))
        recs.setdefault(key, []).append((func, block, index, op))

    if assignment is None:
        for (fname, loop), entries in sorted(recs.items()):
            func, block, index, op = entries[0]
            make(f"{op!r} records loop {loop!r} but no buffer assignment "
                 f"exists", function=fname, block=block.label, index=index)
        return

    table = {(a.func, a.header): a for a in assignment.assigned}
    for (fname, loop), entries in sorted(recs.items()):
        func, block, index, op = entries[0]
        where = dict(function=fname, block=block.label, index=index)
        if len(entries) > 1:
            make(f"loop {loop!r} has {len(entries)} rec operations; the "
                 f"residency table expects one", **where)
        a = table.get((fname, loop))
        if a is None:
            make(f"{op!r} records loop {loop!r} which is not in the "
                 f"assignment table", **where)
            continue
        if op.attrs.get("buf_addr") != a.offset or \
                op.attrs.get("num") != a.length:
            make(f"{op!r} records [{op.attrs.get('buf_addr')}, +"
                 f"{op.attrs.get('num')}) but the assignment says "
                 f"[{a.offset}, +{a.length})", **where)
        counted_op = op.opcode == Opcode.REC_CLOOP
        if counted_op != a.counted:
            make(f"{op!r} disagrees with the assignment's counted="
                 f"{a.counted} flag", **where)

    for a in assignment.assigned:
        if (a.func, a.header) not in recs:
            make(f"assignment for loop {a.header!r} ([{a.offset}, "
                 f"+{a.length})) has no rec operation in the IR",
                 function=a.func, block=a.header)


@rule("buffer-pairing", Severity.ERROR, "buffer")
def check_buffer_pairing(target: LintTarget, make) -> None:
    """A rec/exec operation does not pair with its loop's loop-back branch."""
    for func, block, index, op in _buffer_ops(target, _REC_OPS + _EXEC_OPS):
        where = dict(function=func.name, block=block.label, index=index)
        loop = op.attrs.get("loop")
        if loop is None or not func.has_block(loop):
            make(f"{op!r} names loop {loop!r} which is not a block of "
                 f"{func.name}", **where)
            continue
        term = func.block(loop).terminator
        if term is None or term.target != loop:
            make(f"{op!r} names {loop!r} whose final operation is not a "
                 f"loop-back branch", **where)
            continue
        counted = op.opcode in (Opcode.REC_CLOOP, Opcode.EXEC_CLOOP)
        if counted:
            if term.opcode != Opcode.BR_CLOOP:
                make(f"{op!r} is counted but {loop!r} loops back with "
                     f"{term.opcode.value}", **where)
            elif op.attrs.get("lc") != term.attrs.get("lc"):
                make(f"{op!r} drives counter {op.attrs.get('lc')!r} but "
                     f"the loop-back uses {term.attrs.get('lc')!r}", **where)
        elif term.opcode == Opcode.BR_CLOOP:
            make(f"{op!r} is uncounted but {loop!r} loops back with "
                 f"br_cloop", **where)

    assignment = target.assignment
    if assignment is not None:
        table = {(a.func, a.header) for a in assignment.assigned}
        for func, block, index, op in _buffer_ops(target, _EXEC_OPS):
            if (func.name, op.attrs.get("loop")) not in table:
                make(f"{op!r} executes a loop the assignment never "
                     f"recorded", function=func.name, block=block.label,
                     index=index)


@rule("buffer-overlap", Severity.WARNING, "buffer")
def check_buffer_overlap(target: LintTarget, make) -> None:
    """Two assigned segments share buffer space (dynamic displacement:
    legal, but each entry re-records over the other)."""
    assignment = target.assignment
    if assignment is None:
        return
    placed = assignment.assigned
    for i in range(len(placed)):
        for j in range(i + 1, len(placed)):
            a, b = placed[i], placed[j]
            if a.offset < b.offset + b.length and \
                    b.offset < a.offset + a.length:
                make(f"loops {a.func}/{a.header} and {b.func}/{b.header} "
                     f"overlap in [{max(a.offset, b.offset)}, "
                     f"{min(a.offset + a.length, b.offset + b.length)})",
                     function=a.func, block=a.header)


@rule("buffer-footprint", Severity.ERROR, "buffer")
def check_buffer_footprint(target: LintTarget, make) -> None:
    """An assigned segment length differs from the loop's real footprint
    (modulo-scheduled: kernel ops × MVE factor; else the body op count)."""
    assignment = target.assignment
    if assignment is None:
        return
    modulo = target.modulo or {}
    for a in assignment.assigned:
        try:
            func = target.module.function(a.func)
        except KeyError:
            make(f"assignment names unknown function {a.func!r}",
                 function=a.func, block=a.header)
            continue
        sched = modulo.get((a.func, a.header))
        if sched is not None:
            expected = sched.buffered_op_count
            source = (f"modulo kernel ({sched.kernel_op_count} ops x "
                      f"MVE {sched.mve_factor})")
        elif func.has_block(a.header):
            expected = sum(1 for op in func.block(a.header).ops
                           if op.opcode != Opcode.NOP)
            source = "loop body op count"
        else:
            make(f"assignment names unknown loop {a.header!r}",
                 function=a.func, block=a.header)
            continue
        if a.length != expected:
            make(f"loop {a.header!r} is assigned {a.length} buffer ops "
                 f"but its footprint is {expected} ({source})",
                 function=a.func, block=a.header)
