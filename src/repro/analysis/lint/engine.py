"""The lint rule registry and driver.

A *rule* is a function ``fn(target, make)`` registered under a stable id
with a default severity and a phase:

``ir``
    needs only the module (and machine description) — runs after any pass;
``sched``
    needs list and/or modulo schedules;
``buffer``
    needs the loop-buffer assignment.

``make(message, function=..., block=..., index=..., severity=...)`` builds
and collects a :class:`~repro.analysis.lint.diagnostics.Diagnostic`
pre-bound to the rule's id and default severity, so rule bodies stay
declarative.  Rules must not mutate the IR.

This module is imported by :mod:`repro.pipeline` (checked mode), so it
must never import the pipeline, the runner or the bench registry — the
sweep CLI in :mod:`repro.analysis.lint.cli` owns those dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.ir.function import Function
from repro.ir.module import Module
from repro.sched.machine import DEFAULT_MACHINE, MachineDescription

from .diagnostics import Diagnostic, Severity

PHASES = ("ir", "sched", "buffer")


@dataclass
class LintTarget:
    """Everything a rule may inspect: IR plus optional backend artifacts.

    ``schedules`` is ``{function: {block label: Schedule}}``; ``modulo`` is
    ``{(function, header label): ModuloSchedule}`` — the shapes
    :class:`repro.pipeline.Compiled` carries.  ``functions`` restricts the
    sweep to a subset (checked mode lints only the function a pass just
    rewrote).
    """

    module: Module
    machine: MachineDescription = field(default_factory=lambda: DEFAULT_MACHINE)
    schedules: dict[str, dict[str, object]] | None = None
    modulo: dict[tuple[str, str], object] | None = None
    assignment: object | None = None
    buffer_capacity: int | None = None
    functions: Sequence[str] | None = None

    def selected_functions(self) -> Iterator[Function]:
        for func in self.module.functions.values():
            if self.functions is None or func.name in self.functions:
                yield func


@dataclass(frozen=True)
class Rule:
    rule_id: str
    severity: Severity
    phase: str
    doc: str
    fn: Callable


_REGISTRY: dict[str, Rule] = {}


def rule(rule_id: str, severity: Severity, phase: str):
    """Register a lint rule; the decorated function's docstring is the
    rule-catalog entry."""
    if phase not in PHASES:
        raise ValueError(f"unknown lint phase {phase!r}")

    def decorate(fn: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        doc = (fn.__doc__ or "").strip().split("\n")[0]
        _REGISTRY[rule_id] = Rule(rule_id, severity, phase, doc, fn)
        return fn

    return decorate


def all_rules() -> list[Rule]:
    return sorted(_REGISTRY.values(), key=lambda r: (PHASES.index(r.phase),
                                                     r.rule_id))


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {rule_id!r} (known: "
            f"{', '.join(sorted(_REGISTRY))})"
        ) from None


def run_rules(
    target: LintTarget,
    rule_ids: Iterable[str] | None = None,
    phases: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Run the selected rules over ``target``; diagnostics in rule order."""
    selected = ([get_rule(rid) for rid in rule_ids]
                if rule_ids is not None else all_rules())
    if phases is not None:
        wanted = set(phases)
        selected = [r for r in selected if r.phase in wanted]

    found: list[Diagnostic] = []
    for rule_obj in selected:
        def make(message: str, function: str | None = None,
                 block: str | None = None, index: int | None = None,
                 severity: Severity | None = None,
                 _rule: Rule = rule_obj) -> Diagnostic:
            diag = Diagnostic(_rule.rule_id, severity or _rule.severity,
                              message, function, block, index)
            found.append(diag)
            return diag

        rule_obj.fn(target, make)
    return found


def lint_module(
    module: Module,
    machine: MachineDescription = DEFAULT_MACHINE,
    functions: Sequence[str] | None = None,
    rule_ids: Iterable[str] | None = None,
) -> list[Diagnostic]:
    """Run the IR-phase rules over a bare module."""
    target = LintTarget(module=module, machine=machine, functions=functions)
    return run_rules(target, rule_ids=rule_ids, phases=("ir",))


def lint_compiled(compiled, rule_ids: Iterable[str] | None = None,
                  phases: Iterable[str] | None = None) -> list[Diagnostic]:
    """Run rules over a :class:`repro.pipeline.Compiled` artifact."""
    target = LintTarget(
        module=compiled.module,
        machine=compiled.machine,
        schedules=compiled.schedules,
        modulo=compiled.modulo,
        assignment=compiled.assignment,
        buffer_capacity=compiled.buffer_capacity,
    )
    return run_rules(target, rule_ids=rule_ids, phases=phases)
