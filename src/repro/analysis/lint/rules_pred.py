"""Predicate-web lint rules: global, flow-sensitive predicate sanity.

These rules consult :mod:`repro.analysis.predweb` — the psi-style
global predicate relation analysis — so they can reason about facts the
block-local summary cannot: definedness through *partial* define chains
(an ``ot`` accumulation without a ``pred_set`` root), disjointness of
co-scheduled writes proven semantically rather than by syntactic define
pairing, and flow-insensitive facts that silently span a predicate
redefinition.
"""

from __future__ import annotations

from repro.analysis.predfacts import MERGE, REPLACE, redefinition_kind
from repro.analysis.predrel import block_pred_facts
from repro.analysis.predweb import PredicateWeb
from repro.ir.opcodes import Opcode

from .diagnostics import Severity
from .engine import LintTarget, rule
from .rules_sched import _same_value_write, _scheduled_blocks


@rule("pred-undef-web", Severity.WARNING, "ir")
def check_pred_undef_web(target: LintTarget, make) -> None:
    """An operation's guard may be undefined through a partial-define
    chain: every reaching define is conditional (or-/and-/c-type or
    guarded), so some path leaves the predicate unwritten.  The
    must-defined ``undef-guard`` rule cannot see this — it deliberately
    counts partial writes as definitions."""
    for func in target.selected_functions():
        web = PredicateWeb(func)
        for block in func.blocks:
            points = None
            for index, op in enumerate(block.ops):
                if op.guard is None:
                    continue
                if points is None:
                    points = web.points(block.label)
                if points[index].possibly_undefined(op.guard):
                    make(f"{op!r} is guarded by {op.guard!r} whose reaching "
                         f"defines are all partial; a path can leave it "
                         f"unwritten", function=func.name, block=block.label,
                         index=index)


@rule("pred-cycle-disjoint", Severity.WARNING, "sched")
def check_pred_cycle_disjoint(target: LintTarget, make) -> None:
    """Two co-issued writes to one register are not justified by
    *web-proven* guard disjointness (or a same-value or-/and-type pair).
    ``pred-write-overlap`` accepts the block-local syntactic argument;
    this rule re-proves it against the global predicate webs, with each
    guard's site set pinned at its operation's original position."""
    for func, block, sched in _scheduled_blocks(target):
        web = None
        points = None
        index_of = {op.uid: i for i, op in enumerate(block.ops)}
        by_op = {op.uid: op for op in block.ops}
        for bundle in sched.bundles:
            writers: dict = {}
            for _slot, op in bundle.in_slot_order():
                op = by_op.get(op.uid, op)
                if op.uid not in index_of:
                    continue  # sched-complete / modulo-stale report drift
                for reg in op.writes():
                    writers.setdefault(reg, []).append(op)
            for reg, ops in writers.items():
                for i in range(len(ops)):
                    for j in range(i + 1, len(ops)):
                        a, b = ops[i], ops[j]
                        if _same_value_write(a, reg, b, reg):
                            continue
                        if a.guard is None or b.guard is None \
                                or a.guard == b.guard:
                            make(f"{a!r} and {b!r} co-issue a write to "
                                 f"{reg!r} in cycle {bundle.cycle} without "
                                 f"disjoint guards", function=func.name,
                                 block=block.label)
                            continue
                        if web is None:
                            web = PredicateWeb(func)
                            points = web.points(block.label)
                        ia, ib = index_of[a.uid], index_of[b.uid]
                        later = points[max(ia, ib)]
                        sites_a = points[ia].sites(a.guard)
                        sites_b = points[ib].sites(b.guard)
                        if not later.disjoint_sites(sites_a, sites_b):
                            make(f"{a!r} and {b!r} co-issue a write to "
                                 f"{reg!r} in cycle {bundle.cycle}; the "
                                 f"predicate webs of {a.guard!r} and "
                                 f"{b.guard!r} are not provably disjoint",
                                 function=func.name, block=block.label)


@rule("pred-web-redef", Severity.WARNING, "ir")
def check_pred_web_redef(target: LintTarget, make) -> None:
    """A predicate guards operations on both sides of a web-replacing
    redefinition while block-local facts about it exist: any
    flow-insensitive consumer of those facts (scheduling, promotion)
    would apply the *new* web's facts to the earlier use."""
    for func in target.selected_functions():
        for block in func.blocks:
            facts = None
            used_before: set = set()       # guards read so far
            replaced_after_use: set = set()
            for index, op in enumerate(block.ops):
                if op.guard is not None:
                    if op.guard in replaced_after_use:
                        if facts is None:
                            facts = block_pred_facts(block)
                        if any(op.guard in f[1:] for f in facts):
                            make(f"{op!r} is guarded by {op.guard!r}, "
                                 f"which was redefined after an earlier "
                                 f"guarded use; block-local facts about it "
                                 f"span two webs", function=func.name,
                                 block=block.label, index=index)
                    used_before.add(op.guard)
                for dest_idx, dest in enumerate(op.dests):
                    if not dest.is_predicate or dest not in used_before:
                        continue
                    ptype = None
                    if op.opcode == Opcode.PRED_DEF:
                        ptype = op.attrs["ptypes"][dest_idx]
                    kind = redefinition_kind(op.opcode, ptype,
                                             op.guard is not None)
                    if kind in (REPLACE, MERGE):
                        replaced_after_use.add(dest)
