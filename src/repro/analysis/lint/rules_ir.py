"""IR-phase lint rules: dataflow sanity and predication attributes.

These rules need only the module (plus the machine description for slot
numbering) and therefore run after *every* pass in checked mode.
"""

from __future__ import annotations

from repro.analysis.cfgview import CFGView
from repro.analysis.reachdef import undefined_reads
from repro.ir.opcodes import Opcode
from repro.predication.slots import SLOTS_PER_DEFINE

from .diagnostics import Severity
from .engine import LintTarget, rule


@rule("use-before-def", Severity.ERROR, "ir")
def check_use_before_def(target: LintTarget, make) -> None:
    """A register is read without a write on every path from the entry."""
    for func in target.selected_functions():
        for label, index, op, reg in undefined_reads(func):
            if reg == op.guard:
                continue  # undef-guard owns guard reads
            make(f"{op!r} reads {reg!r} which is not defined on all paths",
                 function=func.name, block=label, index=index)


@rule("undef-guard", Severity.ERROR, "ir")
def check_undef_guard(target: LintTarget, make) -> None:
    """An operation's guard predicate may be uninitialized."""
    for func in target.selected_functions():
        for label, index, op, reg in undefined_reads(func):
            if reg != op.guard:
                continue
            make(f"{op!r} is guarded by {reg!r} which is not defined on "
                 f"all paths", function=func.name, block=label, index=index)


@rule("dead-pred-def", Severity.WARNING, "ir")
def check_dead_pred_def(target: LintTarget, make) -> None:
    """A predicate define writes a predicate no operation ever reads."""
    for func in target.selected_functions():
        read = {reg for op in func.ops() for reg in op.reads()}
        for block in func.blocks:
            for index, op in enumerate(block.ops):
                if op.opcode not in (Opcode.PRED_DEF, Opcode.PRED_SET):
                    continue
                for dst in op.dests:
                    if dst not in read:
                        make(f"{op!r} defines {dst!r} but nothing reads it",
                             function=func.name, block=block.label,
                             index=index)


@rule("psens-unguarded", Severity.ERROR, "ir")
def check_psens_unguarded(target: LintTarget, make) -> None:
    """A predicate-sensitive (``psens``) operation has no guard to consult."""
    for func in target.selected_functions():
        for block in func.blocks:
            for index, op in enumerate(block.ops):
                if op.attrs.get("psens") and op.guard is None:
                    make(f"{op!r} is marked psens but has no guard",
                         function=func.name, block=block.label, index=index)


@rule("slot-route-shape", Severity.ERROR, "ir")
def check_slot_route_shape(target: LintTarget, make) -> None:
    """A ``slot_route`` annotation is malformed or routes off-machine slots."""
    width = target.machine.width
    for func in target.selected_functions():
        for block in func.blocks:
            for index, op in enumerate(block.ops):
                routing = op.attrs.get("slot_route")
                if routing is None:
                    continue
                if op.opcode not in (Opcode.PRED_DEF, Opcode.PRED_SET):
                    make(f"{op!r} carries slot_route but is not a "
                         f"predicate define", function=func.name,
                         block=block.label, index=index)
                    continue
                dest_keys = {repr(dst) for dst in op.dests}
                for key, slots in routing.items():
                    if key not in dest_keys:
                        make(f"{op!r} routes {key} which is not one of its "
                             f"destinations", function=func.name,
                             block=block.label, index=index)
                    for slot in slots:
                        if not 0 <= slot < width:
                            make(f"{op!r} routes {key} to slot {slot} on a "
                                 f"{width}-slot machine", function=func.name,
                                 block=block.label, index=index)


@rule("slot-route-width", Severity.WARNING, "ir")
def check_slot_route_width(target: LintTarget, make) -> None:
    """A define routes one predicate to more slots than its encoding can
    drive (Figure 4: two slot predicates per define) — replication needed."""
    for func in target.selected_functions():
        for block in func.blocks:
            for index, op in enumerate(block.ops):
                routing = op.attrs.get("slot_route")
                if routing is None:
                    continue
                for key, slots in routing.items():
                    if len(slots) > SLOTS_PER_DEFINE:
                        make(f"{op!r} routes {key} to {len(slots)} slots; "
                             f"a define drives at most {SLOTS_PER_DEFINE}",
                             function=func.name, block=block.label,
                             index=index)


@rule("unreachable-block", Severity.ERROR, "ir")
def check_unreachable_block(target: LintTarget, make) -> None:
    """A block is unreachable from the entry (dead layout residue)."""
    for func in target.selected_functions():
        cfg = CFGView(func)
        reachable = cfg.reachable()
        for block in func.blocks:
            if block.label not in reachable:
                make(f"block {block.label!r} is unreachable from "
                     f"{cfg.entry!r}", function=func.name, block=block.label)
