"""End-to-end compilation pipelines (Section 7.1's two configurations).

``compile_traditional``
    "only traditional compiler optimizations (i.e. no predication and no
    loop collapsing)": profile-guided inlining, classical scalar
    optimization, counted-loop conversion, modulo scheduling, loop-buffer
    assignment.

``compile_aggressive``
    adds the control transformations "intended to enhance opportunities
    for instruction buffering": loop peeling, predicated loop collapsing,
    hyperblock if-conversion of loop bodies (and acyclic hammocks),
    branch combining, predicate promotion, height reduction and
    predication-based partial dead-code removal.

Both share the backend: re-profiling, modulo scheduling of simple loops
(with MVE footprints), buffer assignment (which rewrites ``cloop_set``
into ``rec_cloop`` / inserts ``rec_wloop``), then list scheduling of every
block for the cycle simulator.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.analysis.cfgview import CFGView
from repro.analysis.loops import find_loops, is_simple_loop
from repro.analysis.profile import Profile
from repro.ir.module import Module
from repro.ir.verify import verify_module
from repro.loopbuffer.assign import AssignmentResult, assign_buffer
from repro.looptrans.cloop import convert_counted_loops
from repro.looptrans.collapse import collapse_nested_loops
from repro.looptrans.peel import peel_short_loops
from repro.opt.dce import eliminate_dead_code, sink_partially_dead
from repro.opt.inline import inline_module
from repro.opt.local import optimize_function
from repro.opt.reassoc import reassociate_function
from repro.opt.simplify_cfg import simplify_cfg
from repro.predication.branch_combine import combine_branches
from repro.predication.hyperblock import (
    form_hammock_hyperblocks,
    form_loop_hyperblocks,
)
from repro.predication.promotion import promote_function
from repro.sched.list_sched import schedule_function
from repro.sched.machine import DEFAULT_MACHINE, MachineDescription
from repro.sched.modulo import ModuloSchedulingFailed, modulo_schedule
from repro.sim.interp import profile_module
from repro.sim.power import FetchEnergy
from repro.sim.vliw import simulate


@dataclass
class Compiled:
    """A compiled program plus everything the simulator needs."""

    module: Module
    profile: Profile
    schedules: dict[str, dict[str, object]]
    modulo: dict[tuple[str, str], object]
    assignment: AssignmentResult | None
    machine: MachineDescription
    entry: str
    args: list[int]
    stats: dict[str, object] = field(default_factory=dict)
    buffer_capacity: int | None = None

    @property
    def static_ops(self) -> int:
        return self.module.op_count()


@dataclass
class SimulationOutcome:
    result: object
    counters: object
    buffer: object
    energy: FetchEnergy

    @property
    def buffer_issue_fraction(self) -> float:
        return self.counters.buffer_issue_fraction

    @property
    def cycles(self) -> int:
        return self.counters.cycles


def _scalar_cleanup(module: Module) -> None:
    for func in module.functions.values():
        simplify_cfg(func)
        optimize_function(func)
        eliminate_dead_code(func)
        simplify_cfg(func)


def _common_frontend(module: Module, entry: str, args: list[int],
                     inline_budget: float, max_steps: int) -> Profile:
    _scalar_cleanup(module)
    profile, _ = profile_module(module, entry, args, max_steps=max_steps)
    inline_module(module, profile, expansion_limit=inline_budget)
    _scalar_cleanup(module)
    verify_module(module)
    profile, _ = profile_module(module, entry, args, max_steps=max_steps)
    return profile


def _backend(
    module: Module,
    entry: str,
    args: list[int],
    machine: MachineDescription,
    buffer_capacity: int | None,
    max_steps: int,
    stats: dict,
) -> Compiled:
    verify_module(module)
    profile, _ = profile_module(module, entry, args, max_steps=max_steps)

    # modulo-schedule simple loops; their MVE-expanded kernels are the
    # buffer footprints
    modulo: dict[tuple[str, str], object] = {}
    footprint: dict[tuple[str, str], int] = {}
    for func in module.functions.values():
        cfg = CFGView(func)
        for loop in find_loops(func, cfg):
            if not is_simple_loop(func, loop):
                continue
            block = func.block(loop.header)
            try:
                sched = modulo_schedule(block, machine)
            except ModuloSchedulingFailed:
                continue
            modulo[(func.name, loop.header)] = sched
            footprint[(func.name, loop.header)] = sched.buffered_op_count

    assignment = None
    if buffer_capacity:
        assignment = assign_buffer(module, profile, buffer_capacity,
                                   footprint=footprint)
        verify_module(module)

    schedules = {
        func.name: schedule_function(func, machine)
        for func in module.functions.values()
    }
    stats["modulo_loops"] = len(modulo)
    return Compiled(module, profile, schedules, modulo, assignment,
                    machine, entry, list(args), stats,
                    buffer_capacity=buffer_capacity)


def compile_traditional(
    module: Module,
    entry: str = "main",
    args: list[int] | None = None,
    machine: MachineDescription = DEFAULT_MACHINE,
    buffer_capacity: int | None = 256,
    inline_budget: float = 0.5,
    max_steps: int = 200_000_000,
) -> Compiled:
    """The baseline pipeline: no predication, no loop restructuring."""
    module = copy.deepcopy(module)
    args = list(args or [])
    stats: dict[str, object] = {"pipeline": "traditional"}
    _common_frontend(module, entry, args, inline_budget, max_steps)
    convert_counted_loops_stats = convert_counted_loops_all(module)
    stats["cloops"] = convert_counted_loops_stats
    _scalar_cleanup(module)
    return _backend(module, entry, args, machine, buffer_capacity,
                    max_steps, stats)


def compile_aggressive(
    module: Module,
    entry: str = "main",
    args: list[int] | None = None,
    machine: MachineDescription = DEFAULT_MACHINE,
    buffer_capacity: int | None = 256,
    inline_budget: float = 0.5,
    max_steps: int = 200_000_000,
    hammocks: bool = True,
    collapse: bool = True,
    peel: bool = True,
    promote: bool = True,
    combine: bool = True,
) -> Compiled:
    """The paper's aggressive pipeline (hyperblock + loop transforms)."""
    module = copy.deepcopy(module)
    args = list(args or [])
    stats: dict[str, object] = {"pipeline": "aggressive"}
    profile = _common_frontend(module, entry, args, inline_budget, max_steps)

    peel_stats, collapse_stats, form_stats = [], [], []
    for func in module.functions.values():
        # innermost loops first become hyperblocks, dissolving their
        # internal control flow ...
        form_stats.append(form_loop_hyperblocks(func, profile))
        # ... then short counted inner loops peel away entirely ...
        if peel:
            peel_stats.append(peel_short_loops(func))
            simplify_cfg(func)
        # ... remaining nests collapse into single predicated loops ...
        if collapse:
            collapse_stats.append(collapse_nested_loops(func))
        # ... exposing new single-level loops for if-conversion
        form_stats.append(form_loop_hyperblocks(func, profile))
        if hammocks:
            form_hammock_hyperblocks(func, profile)
    verify_module(module)

    profile, _ = profile_module(module, entry, args, max_steps=max_steps)
    combine_stats = []
    promote_stats = []
    for func in module.functions.values():
        if combine:
            combine_stats.append(combine_branches(func, profile))
        reassociate_function(func)
        sink_partially_dead(func)
        if promote:
            promote_stats.append(promote_function(func))
        optimize_function(func)
        eliminate_dead_code(func)
    verify_module(module)

    stats["peel"] = peel_stats
    stats["collapse"] = collapse_stats
    stats["hyperblocks"] = form_stats
    stats["combine"] = combine_stats
    stats["promotion"] = promote_stats
    stats["cloops"] = convert_counted_loops_all(module)
    for func in module.functions.values():
        eliminate_dead_code(func)
    return _backend(module, entry, args, machine, buffer_capacity,
                    max_steps, stats)


def convert_counted_loops_all(module: Module):
    return {
        func.name: convert_counted_loops(func)
        for func in module.functions.values()
    }


def with_buffer(compiled: Compiled, capacity: int | None,
                overhead_aware: bool = True) -> Compiled:
    """Re-target a compiled program at a different buffer capacity.

    Buffer assignment is capacity-dependent (offsets, which loops fit), so
    a Figure 7-style size sweep re-runs assignment and scheduling per
    size.  The input should have been compiled with
    ``buffer_capacity=None`` (no ``rec`` ops installed yet); the original
    ``Compiled`` is left untouched.
    """
    module = copy.deepcopy(compiled.module)
    # deepcopy preserves op uids and labels, so the existing profile stays
    # valid — no re-profiling per buffer size.  The modulo schedules are
    # likewise capacity-independent (they were computed before any buffer
    # assignment, and both the simulator and the footprint calculation
    # read only schedule-shape properties keyed by (function, label)), so
    # a sweep reuses them instead of re-running modulo scheduling per size.
    profile = compiled.profile

    modulo = dict(compiled.modulo)
    footprint = {key: sched.buffered_op_count
                 for key, sched in modulo.items()}

    assignment = None
    if capacity:
        assignment = assign_buffer(module, profile, capacity,
                                   footprint=footprint,
                                   overhead_aware=overhead_aware)
    schedules = {
        func.name: schedule_function(func, compiled.machine)
        for func in module.functions.values()
    }
    return Compiled(module, profile, schedules, modulo, assignment,
                    compiled.machine, compiled.entry, list(compiled.args),
                    dict(compiled.stats), buffer_capacity=capacity)


def run_compiled(
    compiled: Compiled,
    buffer_capacity: int | None | str = "compiled",
    max_steps: int = 200_000_000,
) -> SimulationOutcome:
    """Simulate a compiled program on the VLIW.

    ``buffer_capacity`` defaults to the capacity the program was compiled
    for (buffer assignment bakes offsets in); passing a different value is
    only meaningful for programs compiled with ``buffer_capacity=None``.
    """
    if buffer_capacity == "compiled":
        buffer_capacity = compiled.buffer_capacity
    result, counters, buffer = simulate(
        compiled.module,
        compiled.schedules,
        compiled.modulo,
        compiled.machine,
        buffer_capacity,
        compiled.entry,
        compiled.args,
        max_steps=max_steps,
    )
    energy = FetchEnergy(
        ops_from_memory=counters.ops_from_memory,
        ops_from_buffer=counters.ops_from_buffer,
        buffer_capacity=buffer_capacity or 1,
    )
    return SimulationOutcome(result, counters, buffer, energy)
