"""End-to-end compilation pipelines (Section 7.1's two configurations).

``compile_traditional``
    "only traditional compiler optimizations (i.e. no predication and no
    loop collapsing)": profile-guided inlining, classical scalar
    optimization, counted-loop conversion, modulo scheduling, loop-buffer
    assignment.

``compile_aggressive``
    adds the control transformations "intended to enhance opportunities
    for instruction buffering": loop peeling, predicated loop collapsing,
    hyperblock if-conversion of loop bodies (and acyclic hammocks),
    branch combining, predicate promotion, height reduction and
    predication-based partial dead-code removal.

Both share the backend: re-profiling, modulo scheduling of simple loops
(with MVE footprints), buffer assignment (which rewrites ``cloop_set``
into ``rec_cloop`` / inserts ``rec_wloop``), then list scheduling of every
block for the cycle simulator.

**Checked mode** (``checked=True``, or the ``REPRO_CHECKED`` environment
variable) runs the :mod:`repro.analysis.lint` sanitizer after every pass
and raises :class:`CheckedModeError` naming the first pass that left the
IR — or a schedule, or the buffer assignment — in an illegal state.
"""

from __future__ import annotations

import copy
import os
from dataclasses import dataclass, field, replace

from repro.analysis.cfgview import CFGView
from repro.analysis.lint import (
    Diagnostic,
    LintTarget,
    Severity,
    all_rules,
    errors_only,
    lint_compiled,
    lint_module,
    run_rules,
)
from repro.analysis.loops import find_loops, is_simple_loop
from repro.analysis.profile import Profile
from repro.ir.module import Module
from repro.obs import get_tracer
from repro.ir.verify import VerificationError, verify_module
from repro.loopbuffer.assign import AssignmentResult, assign_buffer
from repro.loopbuffer.overlay import (
    CapacityOverlay,
    RetargetError,
    retarget_choice,
    retarget_overlay,
)
from repro.looptrans.cloop import convert_counted_loops
from repro.looptrans.collapse import collapse_nested_loops
from repro.looptrans.peel import peel_short_loops
from repro.opt.dce import eliminate_dead_code, sink_partially_dead
from repro.opt.inline import inline_module
from repro.opt.local import optimize_function
from repro.opt.reassoc import reassociate_function
from repro.opt.simplify_cfg import simplify_cfg
from repro.predication.branch_combine import combine_branches
from repro.predication.hyperblock import (
    form_hammock_hyperblocks,
    form_loop_hyperblocks,
)
from repro.predication.promotion import promote_function
from repro.sched.list_sched import schedule_function
from repro.sched.machine import DEFAULT_MACHINE, MachineDescription
from repro.sched.modulo import ModuloSchedulingFailed, modulo_schedule
from repro.sim.engine import engine_choice
from repro.sim.interp import profile_module
from repro.sim.power import FetchEnergy
from repro.sim.vliw import simulate


@dataclass
class Compiled:
    """A compiled program plus everything the simulator needs."""

    module: Module
    profile: Profile
    schedules: dict[str, dict[str, object]]
    modulo: dict[tuple[str, str], object]
    assignment: AssignmentResult | None
    machine: MachineDescription
    entry: str
    args: list[int]
    stats: dict[str, object] = field(default_factory=dict)
    buffer_capacity: int | None = None
    #: set when this artifact is a zero-copy retarget of a shared base
    #: (``with_buffer`` overlay mode); ``None`` for direct compiles and
    #: legacy deep-copy retargets.
    overlay: CapacityOverlay | None = None

    @property
    def static_ops(self) -> int:
        return self.module.op_count()


@dataclass
class SimulationOutcome:
    result: object
    counters: object
    buffer: object
    energy: FetchEnergy

    @property
    def buffer_issue_fraction(self) -> float:
        """Dynamic ops issued from the loop buffer over all ops issued.

        0.0 (never a ZeroDivisionError) when the run fetched nothing —
        empty or trivial programs are legal inputs.
        """
        counters = self.counters
        if counters.ops_issued == 0:
            return 0.0
        return counters.ops_from_buffer / counters.ops_issued

    @property
    def per_loop(self) -> dict[str, object]:
        """``"func/header" -> LoopFetchStats`` for every recorded loop."""
        return self.counters.per_loop

    def per_loop_buffer_fractions(self) -> dict[str, float]:
        """Per-loop buffer issue fraction, 0.0 for loops that fetched
        nothing.  Buffer-sourced ops only ever come from recorded loops,
        so these decompose the aggregate :attr:`buffer_issue_fraction`."""
        return {
            key: stats.buffer_issue_fraction
            for key, stats in sorted(self.counters.per_loop.items())
        }

    @property
    def cycles(self) -> int:
        return self.counters.cycles


ENV_CHECKED = "REPRO_CHECKED"

#: transforms legitimately strand remnant blocks between passes (peeling,
#: hyperblock formation); a later ``simplify_cfg`` sweeps them, so the
#: per-pass sanitizer must not flag them.
_PER_PASS_SKIP = frozenset({"unreachable-block"})


def checked_enabled(checked: bool | None = None) -> bool:
    """Resolve the effective checked-mode setting.

    An explicit ``checked`` argument wins; otherwise the ``REPRO_CHECKED``
    environment variable enables it (any value except ``''``/``0``/
    ``false``/``no``).
    """
    if checked is not None:
        return checked
    flag = os.environ.get(ENV_CHECKED, "").strip().lower()
    return flag not in ("", "0", "false", "no")


class CheckedModeError(Exception):
    """A pass left the program in a state the sanitizer rejects.

    ``pass_name`` names the offending pass; ``diagnostics`` holds the
    error-severity :class:`~repro.analysis.lint.Diagnostic` objects, each
    stamped with the pass in its ``passname`` field.
    """

    def __init__(self, pass_name: str, diagnostics: list[Diagnostic]):
        self.pass_name = pass_name
        self.diagnostics = list(diagnostics)
        lines = "\n".join(f"  {d.format()}" for d in self.diagnostics)
        super().__init__(
            f"pass {pass_name!r} left the program in an illegal state:\n"
            f"{lines}"
        )

    def __reduce__(self):
        # survive the pickle round-trip out of pool workers
        return (type(self), (self.pass_name, self.diagnostics))


def _module_shape(module: Module) -> tuple[int, int, int]:
    """(op count, block count, hyperblock count) — the per-pass IR delta."""
    blocks = 0
    hyperblocks = 0
    for func in module.functions.values():
        blocks += len(func.blocks)
        for block in func.blocks:
            if block.hyperblock:
                hyperblocks += 1
    return module.op_count(), blocks, hyperblocks


#: pass-result fields surfaced as span attributes (loop transforms report
#: what they did through their stats objects)
_RESULT_SPAN_FIELDS = ("loops_peeled", "loops_collapsed", "loops_converted",
                       "branches_combined", "promoted")


def _result_span_attrs(result) -> dict:
    attrs: dict[str, int] = {}
    if isinstance(result, dict):
        # e.g. convert_counted_loops_all: {function -> CloopStats}
        for value in result.values():
            for name in _RESULT_SPAN_FIELDS:
                count = getattr(value, name, None)
                if isinstance(count, int):
                    attrs[name] = attrs.get(name, 0) + count
        return attrs
    for name in _RESULT_SPAN_FIELDS:
        count = getattr(result, name, None)
        if isinstance(count, int):
            attrs[name] = count
    return attrs


class _PassChecker:
    """Runs the sanitizer after every pass, attributing violations, and —
    when a tracer is active — wraps each pass in a span recording its wall
    time and IR delta (op/block/hyperblock counts, loops transformed).

    When checking and tracing are both disabled every method is a cheap
    no-op wrapper, so the pipeline threads one code path for all modes.
    """

    def __init__(self, module: Module, machine: MachineDescription,
                 enabled: bool, tracer=None):
        self.module = module
        self.machine = machine
        self.enabled = enabled
        self.tracer = tracer if tracer is not None else get_tracer()
        self._ir_rules = tuple(
            r.rule_id for r in all_rules()
            if r.phase == "ir" and r.rule_id not in _PER_PASS_SKIP)

    def run(self, name: str, fn, *args, scope: str | None = None, **kwargs):
        """Run one pass, then lint the IR it touched (``scope`` narrows the
        sweep to a single function)."""
        tracer = self.tracer
        if not tracer.enabled:
            result = fn(*args, **kwargs)
            self.check_ir(name, scope=scope)
            return result
        before = _module_shape(self.module)
        with tracer.span(name, scope=scope) as span:
            result = fn(*args, **kwargs)
            after = _module_shape(self.module)
            span.annotate(
                ops=after[0], blocks=after[1], hyperblocks=after[2],
                d_ops=after[0] - before[0],
                d_blocks=after[1] - before[1],
                d_hyperblocks=after[2] - before[2],
                **_result_span_attrs(result))
            self.check_ir(name, scope=scope)
        return result

    def check_ir(self, name: str, scope: str | None = None) -> None:
        if not self.enabled:
            return
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(f"check:{name}", category="check", scope=scope):
                self._check_ir(name, scope)
        else:
            self._check_ir(name, scope)

    def _check_ir(self, name: str, scope: str | None) -> None:
        diags: list[Diagnostic] = []
        try:
            verify_module(self.module, allow_unreachable=True)
        except VerificationError as exc:
            diags.append(Diagnostic("verify", Severity.ERROR, str(exc),
                                    function=scope))
        diags.extend(lint_module(
            self.module, self.machine,
            functions=(scope,) if scope is not None else None,
            rule_ids=self._ir_rules))
        self._raise_errors(name, diags)

    def check_target(self, name: str, target: LintTarget,
                     phases: tuple[str, ...]) -> None:
        if not self.enabled:
            return
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span(f"check:{name}", category="check"):
                self._raise_errors(name, run_rules(target, phases=phases))
        else:
            self._raise_errors(name, run_rules(target, phases=phases))

    def _raise_errors(self, name: str, diags: list[Diagnostic]) -> None:
        errors = errors_only(diags)
        if errors:
            raise CheckedModeError(
                name, [replace(d, passname=name) for d in errors])


def _scalar_cleanup(module: Module, checker: _PassChecker) -> None:
    for func in module.functions.values():
        checker.run("simplify_cfg", simplify_cfg, func, scope=func.name)
        checker.run("optimize_function", optimize_function, func,
                    scope=func.name)
        checker.run("eliminate_dead_code", eliminate_dead_code, func,
                    scope=func.name)
        checker.run("simplify_cfg", simplify_cfg, func, scope=func.name)


def _common_frontend(module: Module, entry: str, args: list[int],
                     inline_budget: float, max_steps: int,
                     checker: _PassChecker, engine: str) -> Profile:
    _scalar_cleanup(module, checker)
    profile, _ = profile_module(module, entry, args, max_steps=max_steps,
                                engine=engine)
    checker.run("inline_module", inline_module, module, profile,
                expansion_limit=inline_budget)
    _scalar_cleanup(module, checker)
    verify_module(module)
    profile, _ = profile_module(module, entry, args, max_steps=max_steps,
                                engine=engine)
    return profile


def _backend(
    module: Module,
    entry: str,
    args: list[int],
    machine: MachineDescription,
    buffer_capacity: int | None,
    max_steps: int,
    stats: dict,
    checker: _PassChecker,
    engine: str,
) -> Compiled:
    verify_module(module)
    profile, _ = profile_module(module, entry, args, max_steps=max_steps,
                                engine=engine)
    tracer = checker.tracer

    # modulo-schedule simple loops; their MVE-expanded kernels are the
    # buffer footprints
    modulo: dict[tuple[str, str], object] = {}
    footprint: dict[tuple[str, str], int] = {}
    with tracer.span("modulo_schedule"):
        for func in module.functions.values():
            cfg = CFGView(func)
            for loop in find_loops(func, cfg):
                if not is_simple_loop(func, loop):
                    continue
                block = func.block(loop.header)
                try:
                    sched = modulo_schedule(block, machine, tracer=tracer)
                except ModuloSchedulingFailed as exc:
                    if tracer.enabled:
                        tracer.instant("modulo_failed", category="sched",
                                       func=func.name, block=loop.header,
                                       reason=str(exc))
                    continue
                modulo[(func.name, loop.header)] = sched
                footprint[(func.name, loop.header)] = sched.buffered_op_count
        tracer.annotate(loops_scheduled=len(modulo))
    checker.check_target(
        "modulo_schedule",
        LintTarget(module=module, machine=machine, modulo=modulo),
        phases=("sched",))

    assignment = None
    if buffer_capacity:
        assignment = assign_buffer(module, profile, buffer_capacity,
                                   footprint=footprint, tracer=tracer)
        verify_module(module)
        checker.check_ir("assign_buffer")
        checker.check_target(
            "assign_buffer",
            LintTarget(module=module, machine=machine, modulo=modulo,
                       assignment=assignment,
                       buffer_capacity=buffer_capacity),
            phases=("buffer",))

    with tracer.span("list_schedule"):
        schedules = {
            func.name: schedule_function(func, machine, tracer=tracer)
            for func in module.functions.values()
        }
    checker.check_target(
        "list_schedule",
        LintTarget(module=module, machine=machine, schedules=schedules,
                   modulo=modulo, assignment=assignment,
                   buffer_capacity=buffer_capacity),
        phases=("sched",))
    stats["modulo_loops"] = len(modulo)
    return Compiled(module, profile, schedules, modulo, assignment,
                    machine, entry, list(args), stats,
                    buffer_capacity=buffer_capacity)


def compile_traditional(
    module: Module,
    entry: str = "main",
    args: list[int] | None = None,
    machine: MachineDescription = DEFAULT_MACHINE,
    buffer_capacity: int | None = 256,
    inline_budget: float = 0.5,
    max_steps: int = 200_000_000,
    checked: bool | None = None,
    tracer=None,
    engine: str | None = None,
) -> Compiled:
    """The baseline pipeline: no predication, no loop restructuring.

    ``engine`` selects the profiling-interpreter engine (``"ref"`` /
    ``"fast"``; default per ``REPRO_ENGINE``) — both produce identical
    profiles, hence identical compiled artifacts.
    """
    module = copy.deepcopy(module)
    args = list(args or [])
    engine = engine_choice(engine)
    enabled = checked_enabled(checked)
    stats: dict[str, object] = {"pipeline": "traditional"}
    if enabled:
        stats["checked"] = True
    checker = _PassChecker(module, machine, enabled, tracer)
    with checker.tracer.span("compile_traditional", category="pipeline",
                             entry=entry):
        _common_frontend(module, entry, args, inline_budget, max_steps,
                         checker, engine)
        stats["cloops"] = checker.run("convert_counted_loops",
                                      convert_counted_loops_all, module)
        _scalar_cleanup(module, checker)
        return _backend(module, entry, args, machine, buffer_capacity,
                        max_steps, stats, checker, engine)


def compile_aggressive(
    module: Module,
    entry: str = "main",
    args: list[int] | None = None,
    machine: MachineDescription = DEFAULT_MACHINE,
    buffer_capacity: int | None = 256,
    inline_budget: float = 0.5,
    max_steps: int = 200_000_000,
    hammocks: bool = True,
    collapse: bool = True,
    peel: bool = True,
    promote: bool = True,
    combine: bool = True,
    checked: bool | None = None,
    tracer=None,
    engine: str | None = None,
) -> Compiled:
    """The paper's aggressive pipeline (hyperblock + loop transforms)."""
    module = copy.deepcopy(module)
    args = list(args or [])
    engine = engine_choice(engine)
    enabled = checked_enabled(checked)
    stats: dict[str, object] = {"pipeline": "aggressive"}
    if enabled:
        stats["checked"] = True
    checker = _PassChecker(module, machine, enabled, tracer)
    with checker.tracer.span("compile_aggressive", category="pipeline",
                             entry=entry):
        return _compile_aggressive_body(
            module, entry, args, machine, buffer_capacity, inline_budget,
            max_steps, hammocks, collapse, peel, promote, combine, stats,
            checker, engine)


def _compile_aggressive_body(
    module: Module,
    entry: str,
    args: list[int],
    machine: MachineDescription,
    buffer_capacity: int | None,
    inline_budget: float,
    max_steps: int,
    hammocks: bool,
    collapse: bool,
    peel: bool,
    promote: bool,
    combine: bool,
    stats: dict,
    checker: _PassChecker,
    engine: str,
) -> Compiled:
    profile = _common_frontend(module, entry, args, inline_budget, max_steps,
                               checker, engine)

    peel_stats, collapse_stats, form_stats = [], [], []
    for func in module.functions.values():
        scope = func.name
        # innermost loops first become hyperblocks, dissolving their
        # internal control flow ...
        form_stats.append(checker.run("form_loop_hyperblocks",
                                      form_loop_hyperblocks, func, profile,
                                      scope=scope))
        # ... then short counted inner loops peel away entirely ...
        if peel:
            peel_stats.append(checker.run("peel_short_loops",
                                          peel_short_loops, func,
                                          scope=scope))
            checker.run("simplify_cfg", simplify_cfg, func, scope=scope)
        # ... remaining nests collapse into single predicated loops ...
        if collapse:
            collapse_stats.append(checker.run("collapse_nested_loops",
                                              collapse_nested_loops, func,
                                              scope=scope))
        # ... exposing new single-level loops for if-conversion
        form_stats.append(checker.run("form_loop_hyperblocks",
                                      form_loop_hyperblocks, func, profile,
                                      scope=scope))
        if hammocks:
            checker.run("form_hammock_hyperblocks",
                        form_hammock_hyperblocks, func, profile, scope=scope)
    verify_module(module)

    profile, _ = profile_module(module, entry, args, max_steps=max_steps,
                                engine=engine)
    combine_stats = []
    promote_stats = []
    for func in module.functions.values():
        scope = func.name
        if combine:
            combine_stats.append(checker.run("combine_branches",
                                             combine_branches, func, profile,
                                             scope=scope))
        checker.run("reassociate_function", reassociate_function, func,
                    scope=scope)
        checker.run("sink_partially_dead", sink_partially_dead, func,
                    scope=scope)
        if promote:
            promote_stats.append(checker.run("promote_function",
                                             promote_function, func,
                                             scope=scope))
        checker.run("optimize_function", optimize_function, func, scope=scope)
        checker.run("eliminate_dead_code", eliminate_dead_code, func,
                    scope=scope)
    verify_module(module)

    stats["peel"] = peel_stats
    stats["collapse"] = collapse_stats
    stats["hyperblocks"] = form_stats
    stats["combine"] = combine_stats
    stats["promotion"] = promote_stats
    stats["cloops"] = checker.run("convert_counted_loops",
                                  convert_counted_loops_all, module)
    for func in module.functions.values():
        checker.run("eliminate_dead_code", eliminate_dead_code, func,
                    scope=func.name)
    return _backend(module, entry, args, machine, buffer_capacity,
                    max_steps, stats, checker, engine)


def convert_counted_loops_all(module: Module):
    return {
        func.name: convert_counted_loops(func)
        for func in module.functions.values()
    }


def with_buffer(compiled: Compiled, capacity: int | None,
                overhead_aware: bool = True,
                checked: bool | None = None,
                tracer=None,
                retarget: str | None = None) -> Compiled:
    """Re-target a compiled program at a different buffer capacity.

    Buffer assignment is capacity-dependent (offsets, which loops fit),
    so a Figure 7-style size sweep re-runs assignment per size.  The
    input must have been compiled with ``buffer_capacity=None`` (no
    ``rec`` ops installed yet); re-targeting an already-buffered artifact
    raises :class:`RetargetError` — re-running assignment over installed
    ``rec`` ops would silently stack directives.  The original
    ``Compiled`` is never mutated.

    ``retarget`` selects the implementation (default per
    ``REPRO_RETARGET``, else ``"overlay"``):

    * ``"overlay"`` — zero-copy: only preheaders that gain ``rec``
      directives are materialized (copy-on-write at block granularity)
      and rescheduled; everything else, including ``capacity=None``
      (which returns a pure view), shares the base artifact's objects.
    * ``"legacy"`` — the historical whole-module deepcopy plus full
      reschedule, kept as the differential reference.

    Both paths produce byte-identical run summaries.  Checked mode lints
    the re-targeted artifact across all phases before returning it.
    """
    mode = retarget_choice(retarget)
    if compiled.buffer_capacity is not None:
        raise RetargetError(
            f"cannot retarget an artifact already buffered at capacity "
            f"{compiled.buffer_capacity}; recompile with "
            f"buffer_capacity=None and re-target that base instead"
        )
    tracer = tracer if tracer is not None else get_tracer()
    with tracer.span("with_buffer", category="pipeline",
                     capacity=capacity, retarget=mode):
        if mode == "legacy":
            result = _with_buffer_legacy(compiled, capacity, overhead_aware,
                                         tracer)
        else:
            module, assignment, schedules, overlay = retarget_overlay(
                compiled, capacity, overhead_aware=overhead_aware,
                tracer=tracer, assign=assign_buffer)
            result = Compiled(module, compiled.profile, schedules,
                              dict(compiled.modulo), assignment,
                              compiled.machine, compiled.entry,
                              list(compiled.args), dict(compiled.stats),
                              buffer_capacity=capacity, overlay=overlay)
        if checked_enabled(checked):
            errors = errors_only(lint_compiled(result))
            if errors:
                raise CheckedModeError(
                    "with_buffer",
                    [replace(d, passname="with_buffer") for d in errors])
        return result


def _with_buffer_legacy(compiled: Compiled, capacity: int | None,
                        overhead_aware: bool, tracer) -> Compiled:
    """The deep-copy retarget path (``REPRO_RETARGET=legacy``)."""
    module = copy.deepcopy(compiled.module)
    # deepcopy preserves op uids and labels, so the existing profile
    # stays valid — no re-profiling per buffer size.  The modulo
    # schedules are likewise capacity-independent (they were computed
    # before any buffer assignment, and both the simulator and the
    # footprint calculation read only schedule-shape properties keyed
    # by (function, label)), so a sweep reuses them instead of
    # re-running modulo scheduling per size.
    profile = compiled.profile

    modulo = dict(compiled.modulo)
    footprint = {key: sched.buffered_op_count
                 for key, sched in modulo.items()}

    assignment = None
    if capacity:
        assignment = assign_buffer(module, profile, capacity,
                                   footprint=footprint,
                                   overhead_aware=overhead_aware,
                                   tracer=tracer)
    with tracer.span("list_schedule"):
        schedules = {
            func.name: schedule_function(func, compiled.machine,
                                         tracer=tracer)
            for func in module.functions.values()
        }
    return Compiled(module, profile, schedules, modulo, assignment,
                    compiled.machine, compiled.entry,
                    list(compiled.args), dict(compiled.stats),
                    buffer_capacity=capacity)


def run_compiled(
    compiled: Compiled,
    buffer_capacity: int | None | str = "compiled",
    max_steps: int = 200_000_000,
    tracer=None,
    engine: str | None = None,
) -> SimulationOutcome:
    """Simulate a compiled program on the VLIW.

    ``buffer_capacity`` defaults to the capacity the program was compiled
    for (buffer assignment bakes offsets in); passing a different value is
    only meaningful for programs compiled with ``buffer_capacity=None``.
    ``engine`` selects the simulator engine (``"ref"``/``"fast"``, default
    per ``REPRO_ENGINE``); the counters are identical either way.
    """
    if buffer_capacity == "compiled":
        buffer_capacity = compiled.buffer_capacity
    engine = engine_choice(engine)
    tracer = tracer if tracer is not None else get_tracer()
    with tracer.span("simulate", category="sim",
                     capacity=buffer_capacity, engine=engine) as span:
        result, counters, buffer = simulate(
            compiled.module,
            compiled.schedules,
            compiled.modulo,
            compiled.machine,
            buffer_capacity,
            compiled.entry,
            compiled.args,
            max_steps=max_steps,
            tracer=tracer,
            engine=engine,
        )
        span.annotate(
            cycles=counters.cycles,
            ops_issued=counters.ops_issued,
            ops_from_buffer=counters.ops_from_buffer,
            ops_from_memory=counters.ops_from_memory,
        )
    energy = FetchEnergy(
        ops_from_memory=counters.ops_from_memory,
        ops_from_buffer=counters.ops_from_buffer,
        buffer_capacity=buffer_capacity or 1,
    )
    return SimulationOutcome(result, counters, buffer, energy)
