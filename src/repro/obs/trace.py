"""Span-based tracing for compiler passes and the simulator.

A :class:`Tracer` collects three kinds of observations:

* **spans** — nested, wall-clock timed intervals (one per compiler pass,
  one per pipeline, one per simulation), each carrying a structured
  attribute dict (IR deltas, achieved II vs. MinII, buffer footprints...);
* **instant events** — point observations with an explicit timestamp
  domain (the simulator stamps loop-buffer lifecycle events with its
  *cycle* count, so traces of cached runs replay deterministically);
* **metrics** — a :class:`~repro.obs.metrics.MetricsRegistry` of labeled
  counters/gauges/histograms folded into runner cell records.

The disabled path is :data:`NULL_TRACER`, a singleton whose ``span`` hands
back one shared no-op context manager: call sites guard on
``tracer.enabled`` before doing *any* attribute computation, so tracing
off costs one attribute read per pass and zero allocations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry


@dataclass
class Span:
    """One timed interval; ``ts_us``/``dur_us`` are µs since tracer epoch."""

    name: str
    category: str
    ts_us: float
    dur_us: float | None = None
    depth: int = 0
    attrs: dict = field(default_factory=dict)

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.category,
            "ts": round(self.ts_us, 3),
            "dur": round(self.dur_us, 3) if self.dur_us is not None else 0.0,
            "depth": self.depth,
            "args": dict(self.attrs),
        }


@dataclass
class Instant:
    """A point event.  ``clock`` names the timestamp domain: ``"wall"``
    (µs since tracer epoch) or ``"cycles"`` (simulated machine cycles)."""

    name: str
    category: str
    ts: float
    clock: str = "wall"
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "cat": self.category,
            "ts": round(self.ts, 3),
            "clock": self.clock,
            "args": dict(self.attrs),
        }


class _OpenSpan:
    """Context manager that opens a span on enter and times it on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_attrs", "span")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._attrs = attrs
        self.span: Span | None = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = Span(self._name, self._category, tracer.now_us(),
                    depth=len(tracer._stack), attrs=self._attrs)
        tracer.spans.append(span)
        tracer._stack.append(span)
        self.span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        span = tracer._stack.pop()
        span.dur_us = tracer.now_us() - span.ts_us
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        return False


class _NullSpan:
    """The shared do-nothing span: enter/exit/annotate are all free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracing: every operation is a no-op and allocates nothing.

    A single module-level instance (:data:`NULL_TRACER`) is shared by all
    disabled call sites; ``span`` always returns the same ``_NullSpan``.
    """

    __slots__ = ()

    enabled = False
    metrics = MetricsRegistry()  # shared, deliberately never populated

    def span(self, name: str, category: str = "pass", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "event",
                ts: float | None = None, clock: str = "wall",
                **attrs) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    def to_payload(self) -> dict:
        return {"spans": [], "events": [], "metrics": {}}


NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans, instants and metrics for one traced activity.

    ``clock`` is injectable for deterministic tests; timestamps are µs
    relative to the tracer's construction (its *epoch*), so serialized
    payloads always start near zero whatever the host clock reads.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.spans: list[Span] = []
        self.events: list[Instant] = []
        self.metrics = MetricsRegistry()
        self._stack: list[Span] = []

    # -- time ----------------------------------------------------------------

    def now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    # -- recording -----------------------------------------------------------

    def span(self, name: str, category: str = "pass", **attrs) -> _OpenSpan:
        """Open a nested span::

            with tracer.span("peel_short_loops", scope="main") as span:
                ...
                span.annotate(loops_peeled=2)
        """
        return _OpenSpan(self, name, category, attrs)

    def instant(self, name: str, category: str = "event",
                ts: float | None = None, clock: str = "wall",
                **attrs) -> None:
        """Record a point event; ``ts`` defaults to the wall clock, or pass
        an explicit value (e.g. a simulator cycle count) with its
        ``clock`` domain."""
        if ts is None:
            ts = self.now_us()
            clock = "wall"
        self.events.append(Instant(name, category, ts, clock, attrs))

    def annotate(self, **attrs) -> None:
        """Merge attributes into the innermost open span (no-op outside)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    @property
    def open_spans(self) -> int:
        return len(self._stack)

    # -- serialization -------------------------------------------------------

    def to_payload(self) -> dict:
        """Plain-dict (JSON- and pickle-able) form of everything recorded."""
        return {
            "spans": [span.as_dict() for span in self.spans],
            "events": [event.as_dict() for event in self.events],
            "metrics": self.metrics.snapshot(),
        }
