"""Observability: pass/sim tracing, metrics registry, trace export.

One process-global :class:`~repro.obs.trace.Tracer` is consulted by the
pipeline, the schedulers, buffer assignment and the VLIW simulator.  It
defaults to :data:`~repro.obs.trace.NULL_TRACER` (every operation free),
and is either installed explicitly::

    tracer = Tracer()
    with obs.use(tracer):
        compiled = compile_aggressive(module)
    payload = tracer.to_payload()

or injected per call (``compile_aggressive(module, tracer=tracer)``).
:func:`disabled` forces the null tracer regardless of what is installed —
the guard the runner uses around cache-served cells, and the hook tests
use to pin the zero-allocation fast path.

``REPRO_TRACE`` turns tracing on for the runner CLI (any non-empty value
except ``0``/``false``/``no``; a value that names a path doubles as the
trace output directory).  Trace artifacts are cached beside compiled
artifacts under the same content-addressed keys, so warm cells replay
their recorded traces instead of recomputing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NULL_TRACER, Instant, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_TRACE_DIR",
    "ENV_TRACE",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "disabled",
    "get_tracer",
    "set_tracer",
    "trace_dir_from_env",
    "tracing_enabled",
    "use",
]

ENV_TRACE = "REPRO_TRACE"

#: default directory for runner trace artifacts when only a flag is given
DEFAULT_TRACE_DIR = ".repro_trace"

_active: Tracer | NullTracer = NULL_TRACER
_disabled_depth = 0


def get_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code should record into right now."""
    if _disabled_depth:
        return NULL_TRACER
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install (or, with ``None``, clear) the process-global tracer;
    returns the previous one."""
    global _active
    previous = _active
    _active = NULL_TRACER if tracer is None else tracer
    return previous


@contextmanager
def use(tracer: Tracer | None):
    """Scope a tracer: install on entry, restore the previous on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def disabled():
    """Force the null tracer inside the block, whatever is installed."""
    global _disabled_depth
    _disabled_depth += 1
    try:
        yield
    finally:
        _disabled_depth -= 1


def tracing_enabled() -> bool:
    return get_tracer().enabled


def trace_dir_from_env(value: str | None = None) -> str | None:
    """Resolve ``REPRO_TRACE`` to a trace output directory, or ``None``.

    Falsey values (unset, ``''``, ``0``, ``false``, ``no``) disable
    tracing; bare truthy flags (``1``, ``true``, ``yes``, ``on``) use
    :data:`DEFAULT_TRACE_DIR`; anything else is taken as the directory.
    """
    if value is None:
        value = os.environ.get(ENV_TRACE, "")
    value = value.strip()
    if value.lower() in ("", "0", "false", "no"):
        return None
    if value.lower() in ("1", "true", "yes", "on"):
        return DEFAULT_TRACE_DIR
    return value
