"""The built-in benchmark specs behind ``scripts/bench_*.py`` and CI.

Three protected fast paths, each measured as a *pair* of specs plus a
derived machine-portable ratio:

* ``sim.ref`` / ``sim.fast`` / ``sim.speedup`` — cold Figure 7 grid
  compute seconds per engine (the BENCH_sim.json study).  Both engines'
  run summaries must be byte-identical (``digest_group="sim"``).
* ``sched.legacy`` / ``sched.opt`` / ``sched.speedup`` — scheduler-phase
  seconds (``repro.sched.cache.STATS``) over the compile side of the
  grid, legacy linear-probe vs. memoized/bitmask path, with canonical
  schedules verified identical (``digest_group="sched"``).
* ``sweep.legacy`` / ``sweep.overlay`` / ``sweep.speedup`` —
  ``with_buffer`` seconds over a capacity sweep, deep-copy vs. zero-copy
  overlay retarget, with the retargeted artifacts (assignment tables,
  ``rec`` sites, canonical schedules) verified identical
  (``digest_group="sweep"``).
* ``obs.off`` / ``obs.on`` / ``obs.overhead`` — cold-grid wall seconds
  with tracing disabled vs. enabled; the ratio is the instrumentation
  overhead (lower is better, ceiling-budgeted).

Every timing spec records per-phase series (compile/retarget/simulate or
list/modulo), so a regression flagged by the gate arrives with the phase
that caused it.  ``mode`` selects the grid: ``quick`` is the CI smoke
subset, ``full`` the complete Figure 7 study.
"""

from __future__ import annotations

import hashlib
import tempfile
import time
from pathlib import Path

from repro.obs.perf.harness import (
    BenchError,
    BenchSpec,
    RatioSpec,
    Sample,
    register,
)

FULL_CAPACITIES = (16, 32, 64, 128, 256, 512, 1024, 2048)
PIPELINES = ("traditional", "aggressive")

#: CI smoke grids (kept tiny: the gate runs on every pull request)
QUICK_SIM = {"benchmarks": ("adpcm_enc", "mpeg2_dec"),
             "capacities": (64, 256)}
QUICK_SCHED = {"benchmarks": ("adpcm_enc", "g724_dec"),
               "capacities": (64, 256)}
QUICK_OBS = {"benchmarks": ("adpcm_enc", "mpeg2_dec"),
             "capacities": (256,)}
QUICK_SWEEP = {"benchmarks": ("adpcm_enc", "mpeg2_dec"),
               "capacities": (16, 64, 256, 1024)}

def _digest(obj) -> str:
    return hashlib.sha256(repr(obj).encode()).hexdigest()[:16]


def _grid_config(quick_grid: dict, mode: str) -> dict:
    from repro.bench import benchmark_names

    if mode == "quick":
        names = list(quick_grid["benchmarks"])
        capacities = list(quick_grid["capacities"])
    elif mode == "full":
        names = benchmark_names()
        capacities = list(FULL_CAPACITIES)
    else:
        raise BenchError(f"unknown mode {mode!r} (quick|full)")
    return {"benchmarks": names, "pipelines": list(PIPELINES),
            "capacities": capacities}


# ---------------------------------------------------------------------------
# sim: reference vs. fast engine, cold grid


def _sim_config(mode: str, engine: str) -> dict:
    return dict(_grid_config(QUICK_SIM, mode), engine=engine, workers=1)


def _sim_sample(mode: str, engine: str) -> Sample:
    from repro.runner.cache import ArtifactCache
    from repro.runner.metrics import MetricsRecorder
    from repro.runner.parallel import expand_grid, run_grid

    config = _sim_config(mode, engine)
    cells = expand_grid(config["benchmarks"], PIPELINES,
                        config["capacities"])
    with tempfile.TemporaryDirectory(prefix="repro-perf-sim-") as tmp:
        cache = ArtifactCache(Path(tmp) / "cache")
        metrics = MetricsRecorder()
        summaries = run_grid(cells, workers=1, cache=cache,
                             metrics=metrics, engine=engine)
    if metrics.run_cache_hits:
        raise BenchError("sim bench: cold run hit the cache")
    phases = {
        stage: sum(c.stages.get(stage, 0.0) for c in metrics.cells)
        for stage in ("compile", "retarget", "simulate")
    }
    return Sample(
        value=sum(phases.values()),
        phases=phases,
        meta={"digest": _digest(summaries), "cells": len(cells)},
        check=summaries,
    )


# ---------------------------------------------------------------------------
# sched: legacy vs. memoized scheduler phase, compile side only


def _canonical_schedules(compiled) -> tuple:
    """Schedule content of a compiled artifact, identity-comparable."""
    placements = {}
    for fname, schedules in compiled.schedules.items():
        for label, sched in schedules.items():
            ops = {op.uid: op
                   for bundle in sched.bundles for _, op in
                   bundle.in_slot_order()}
            placements[(fname, label)] = tuple(sorted(
                (place.cycle, place.slot, repr(ops[uid]))
                for uid, place in sched.placement.items()))
    modulo = {}
    for key, sched in compiled.modulo.items():
        by_uid = {op.uid: op for op in sched.ops}
        modulo[key] = (sched.ii, sched.mve_factor, tuple(sorted(
            (repr(by_uid[uid]), t, sched.slots[uid])
            for uid, t in sched.times.items())))
    return (tuple(sorted(placements.items())),
            tuple(sorted(modulo.items())))


def _sched_config(mode: str, variant: str) -> dict:
    config = _grid_config(QUICK_SCHED, mode)
    config["capacities"] = [None] + list(config["capacities"])
    return dict(config, scheduler=variant)


def _sched_sample(mode: str, legacy: bool) -> Sample:
    from repro.bench import all_benchmarks
    from repro.pipeline import (
        compile_aggressive,
        compile_traditional,
        with_buffer,
    )
    from repro.sched import cache as sched_cache

    compilers = {"traditional": compile_traditional,
                 "aggressive": compile_aggressive}
    config = _sched_config(mode, "legacy" if legacy else "optimized")
    benches = {b.name: b for b in all_benchmarks()}
    sched_cache.clear_caches()
    before = dict(sched_cache.STATS.seconds)
    cells = []
    t0 = time.perf_counter()
    with sched_cache.legacy_mode(legacy):
        for name in config["benchmarks"]:
            bench = benches[name]
            for pipeline in PIPELINES:
                compiled = compilers[pipeline](
                    bench.build(), entry=bench.entry, args=bench.args,
                    buffer_capacity=None)
                cells.append(((name, pipeline, None),
                              _canonical_schedules(compiled)))
                for capacity in config["capacities"]:
                    if capacity is None:
                        continue
                    cells.append(((name, pipeline, capacity),
                                  _canonical_schedules(
                                      with_buffer(compiled, capacity))))
    wall = time.perf_counter() - t0
    seconds = sched_cache.STATS.seconds
    phases = {
        kind: seconds.get(kind, 0.0) - before.get(kind, 0.0)
        for kind in ("list", "modulo")
    }
    return Sample(
        value=sum(phases.values()),
        phases=phases,
        meta={"digest": _digest(cells), "cells": len(cells),
              "compile_wall_s": round(wall, 3)},
        check=cells,
    )


# ---------------------------------------------------------------------------
# sweep: legacy deep-copy vs. zero-copy overlay with_buffer, retarget only


def _canonical_retarget(compiled) -> tuple:
    """Retarget-visible content of a compiled artifact.

    Assignment table, every ``rec_*`` site in the rewritten module and
    the canonical schedules — everything the two ``with_buffer``
    implementations must agree on byte-for-byte.
    """
    from repro.ir.opcodes import Opcode

    assigned = tuple(sorted(
        (a.func, a.header, a.offset, a.length, a.counted)
        for a in compiled.assignment.assigned)) if compiled.assignment else ()
    unassigned = tuple(sorted(compiled.assignment.unassigned)) \
        if compiled.assignment else ()
    recs = []
    for func in compiled.module.functions.values():
        for block in func.blocks:
            for index, op in enumerate(block.ops):
                if op.opcode in (Opcode.REC_CLOOP, Opcode.REC_WLOOP):
                    recs.append((func.name, block.label, index, repr(op)))
    return (assigned, unassigned, tuple(sorted(recs)),
            _canonical_schedules(compiled))


def _sweep_config(mode: str, retarget: str) -> dict:
    config = _grid_config(QUICK_SWEEP, mode)
    return dict(config, retarget=retarget)


def _sweep_sample(mode: str, retarget: str) -> Sample:
    from repro.bench import all_benchmarks
    from repro.pipeline import (
        compile_aggressive,
        compile_traditional,
        with_buffer,
    )
    from repro.sched import cache as sched_cache

    compilers = {"traditional": compile_traditional,
                 "aggressive": compile_aggressive}
    config = _sweep_config(mode, retarget)
    benches = {b.name: b for b in all_benchmarks()}
    sched_cache.clear_caches()
    cells = []
    compile_wall = 0.0
    retarget_wall = 0.0
    for name in config["benchmarks"]:
        bench = benches[name]
        for pipeline in PIPELINES:
            t0 = time.perf_counter()
            base = compilers[pipeline](
                bench.build(), entry=bench.entry, args=bench.args,
                buffer_capacity=None)
            compile_wall += time.perf_counter() - t0
            for capacity in config["capacities"]:
                t0 = time.perf_counter()
                retargeted = with_buffer(base, capacity, retarget=retarget)
                retarget_wall += time.perf_counter() - t0
                cells.append(((name, pipeline, capacity),
                              _canonical_retarget(retargeted)))
    return Sample(
        value=retarget_wall,
        phases={"retarget": retarget_wall},
        meta={"digest": _digest(cells), "cells": len(cells),
              "compile_wall_s": round(compile_wall, 3)},
        check=cells,
    )


# ---------------------------------------------------------------------------
# obs: tracing disabled vs. enabled, cold grid wall time


def _obs_config(mode: str, tracing: str) -> dict:
    return dict(_grid_config(QUICK_OBS, mode), tracing=tracing,
                engine="fast", workers=1)


def _obs_sample(mode: str, trace: bool) -> Sample:
    from repro.runner.cache import ArtifactCache
    from repro.runner.metrics import MetricsRecorder
    from repro.runner.parallel import expand_grid, run_grid

    config = _obs_config(mode, "on" if trace else "off")
    cells = expand_grid(config["benchmarks"], PIPELINES,
                        config["capacities"])
    with tempfile.TemporaryDirectory(prefix="repro-perf-obs-") as tmp:
        cache = ArtifactCache(Path(tmp) / "cache")
        metrics = MetricsRecorder()
        summaries = run_grid(cells, workers=1, cache=cache,
                             metrics=metrics, engine="fast", trace=trace)
    if metrics.run_cache_hits:
        raise BenchError("obs bench: cold run hit the cache")
    phases = {
        stage: sum(c.stages.get(stage, 0.0) for c in metrics.cells)
        for stage in ("compile", "retarget", "simulate")
    }
    return Sample(
        value=metrics.wall_time_s,
        phases=phases,
        meta={"digest": _digest(summaries), "cells": len(cells)},
        check=summaries,
    )


# ---------------------------------------------------------------------------
# registration


#: the CI gate's default suite (every ratio pulls in its inputs)
DEFAULT_SUITE = ("sim.speedup", "sched.speedup", "sweep.speedup",
                 "obs.overhead", "serve.speedup", "serve.hitrate")


def ensure_registered() -> None:
    """Register the built-in specs (idempotent; keyed on the registry
    itself, so a test that snapshots and restores it re-triggers)."""
    from repro.obs.perf.harness import _REGISTRY
    from repro.serve import benches as serve_benches

    serve_benches.ensure_registered()
    if "sim.ref" in _REGISTRY:
        return

    register(BenchSpec(
        "sim.ref", lambda mode: _sim_sample(mode, "ref"),
        lambda mode: _sim_config(mode, "ref"),
        digest_group="sim",
        help="cold-grid compute seconds, reference interpreter/VLIW"))
    register(BenchSpec(
        "sim.fast", lambda mode: _sim_sample(mode, "fast"),
        lambda mode: _sim_config(mode, "fast"),
        digest_group="sim",
        help="cold-grid compute seconds, predecoded fast engine"))
    register(RatioSpec(
        "sim.speedup", "sim.ref", "sim.fast",
        budgets={"quick": 1.0, "full": 2.0},
        help="fast-engine speedup (ref/fast compute seconds)"))

    register(BenchSpec(
        "sched.legacy", lambda mode: _sched_sample(mode, True),
        lambda mode: _sched_config(mode, "legacy"),
        digest_group="sched",
        help="scheduler-phase seconds, legacy linear-probe path"))
    register(BenchSpec(
        "sched.opt", lambda mode: _sched_sample(mode, False),
        lambda mode: _sched_config(mode, "optimized"),
        digest_group="sched",
        help="scheduler-phase seconds, memoized/bitmask path"))
    register(RatioSpec(
        "sched.speedup", "sched.legacy", "sched.opt",
        budgets={"quick": 1.0, "full": 2.0},
        help="scheduler speedup (legacy/optimized phase seconds)"))

    register(BenchSpec(
        "sweep.legacy", lambda mode: _sweep_sample(mode, "legacy"),
        lambda mode: _sweep_config(mode, "legacy"),
        digest_group="sweep",
        help="with_buffer seconds over a capacity sweep, deep-copy path"))
    register(BenchSpec(
        "sweep.overlay", lambda mode: _sweep_sample(mode, "overlay"),
        lambda mode: _sweep_config(mode, "overlay"),
        digest_group="sweep",
        help="with_buffer seconds over a capacity sweep, zero-copy "
             "overlay path"))
    register(RatioSpec(
        "sweep.speedup", "sweep.legacy", "sweep.overlay",
        budgets={"quick": 3.0, "full": 3.0},
        help="retarget speedup (legacy/overlay with_buffer seconds)"))

    register(BenchSpec(
        "obs.off", lambda mode: _obs_sample(mode, False),
        lambda mode: _obs_config(mode, "off"),
        digest_group="obs",
        help="cold-grid wall seconds, tracing disabled"))
    register(BenchSpec(
        "obs.on", lambda mode: _obs_sample(mode, True),
        lambda mode: _obs_config(mode, "on"),
        digest_group="obs",
        help="cold-grid wall seconds, tracing enabled"))
    register(RatioSpec(
        "obs.overhead", "obs.on", "obs.off",
        direction="lower",
        budgets={"quick": 1.5, "full": 1.10},
        help="tracing overhead ratio (on/off wall time; lower is better)"))
