"""Phase-level profiling: span accumulation, attribution, flamegraphs.

A :class:`PhaseProfile` folds the three instrumentation sources the repo
already records into one attribution report:

* **pass spans** — the ``_PassChecker`` / pipeline spans in tracer
  payloads (or an exported Chrome trace), nested by depth, accumulated
  into per-name wall and *self* time (wall minus children);
* **scheduler phase seconds** — :data:`repro.sched.cache.STATS`-style
  ``{"list": s, "modulo": s}`` accumulators;
* **simulator lifecycle instants** — the cycle-stamped loop-buffer
  events (record/hit/evict...), counted per name.

Two exports: :meth:`render` (the per-phase attribution tables a flagged
regression points at) and :meth:`collapsed_lines` — the classic
semicolon-joined collapsed-stack format every flamegraph tool
(``flamegraph.pl``, speedscope, inferno) accepts, one
``root;child;leaf <self_us>`` line per distinct stack.  The ``--flame``
and ``--top`` flags of ``python -m repro.obs report`` are thin wrappers
over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runner.summary import format_table


@dataclass
class SpanRecord:
    """One closed span placed in its stack: ``path`` is root-to-leaf."""

    path: tuple[str, ...]
    wall_us: float
    self_us: float

    @property
    def name(self) -> str:
        return self.path[-1]


class PhaseProfile:
    """Accumulates spans, scheduler seconds and simulator event counts."""

    def __init__(self) -> None:
        #: phase name -> {"count", "wall_us", "self_us"}
        self.phases: dict[str, dict] = {}
        #: collapsed stack -> accumulated self µs
        self.stacks: dict[tuple[str, ...], float] = {}
        #: every individual span, for top-N reporting
        self.spans: list[SpanRecord] = []
        #: scheduler phase -> seconds (sched/cache.py STATS.seconds)
        self.sched_seconds: dict[str, float] = {}
        #: simulator lifecycle event name -> count
        self.sim_events: dict[str, int] = {}

    # -- folding -------------------------------------------------------------

    def _add_span(self, path: tuple[str, ...], wall_us: float,
                  self_us: float) -> None:
        entry = self.phases.setdefault(
            path[-1], {"count": 0, "wall_us": 0.0, "self_us": 0.0})
        entry["count"] += 1
        entry["wall_us"] += wall_us
        entry["self_us"] += self_us
        self.stacks[path] = self.stacks.get(path, 0.0) + self_us
        self.spans.append(SpanRecord(path, wall_us, self_us))

    def add_payload(self, payload: dict | None,
                    root: str | None = None) -> None:
        """Fold one tracer payload (``Tracer.to_payload`` shape).

        Spans are stored in open order with their nesting ``depth``, so
        the stack reconstructs exactly; self time is each span's duration
        minus its direct children's.  ``root`` prefixes every stack
        (e.g. a cell label), keeping flamegraphs per-cell.
        """
        if not payload:
            return
        spans = payload.get("spans", ())
        prefix = (root,) if root else ()
        # (depth, name, dur, children_dur) open stack
        stack: list[list] = []
        closed: list[tuple[tuple[str, ...], float, float]] = []

        def _close(entry) -> None:
            depth, name, dur, child_dur = entry
            path = prefix + tuple(s[1] for s in stack[:depth]) + (name,)
            closed.append((path, dur, max(dur - child_dur, 0.0)))

        for span in spans:
            depth = span.get("depth", 0)
            while len(stack) > depth:
                _close(stack.pop())
            dur = max(span.get("dur", 0.0), 0.0)
            if stack:
                stack[-1][3] += dur
            stack.append([depth, span.get("name", "?"), dur, 0.0])
        while stack:
            _close(stack.pop())
        for path, dur, self_us in closed:
            self._add_span(path, dur, self_us)
        self.add_instants(payload)

    def add_instants(self, payload: dict | None) -> None:
        """Count the simulator's cycle-clock lifecycle instants."""
        if not payload:
            return
        for event in payload.get("events", ()):
            if event.get("clock") != "cycles":
                continue
            name = event.get("name", "?")
            self.sim_events[name] = self.sim_events.get(name, 0) + 1

    def add_cell(self, cell: dict) -> None:
        """Fold one runner cell trace (compile + run payloads)."""
        from repro.obs.export import cell_label

        label = cell_label(cell)
        self.add_payload(cell.get("compile"), root=label)
        self.add_payload(cell.get("run"), root=label)

    def add_cells(self, cells: list[dict]) -> None:
        for cell in cells:
            self.add_cell(cell)

    def add_sched_seconds(self, seconds: dict) -> None:
        """Fold a scheduler-phase seconds dict (STATS.seconds shape)."""
        for kind, value in seconds.items():
            self.sched_seconds[kind] = \
                self.sched_seconds.get(kind, 0.0) + value

    def add_chrome_trace(self, doc: dict) -> None:
        """Fold an exported Chrome trace: nesting is re-derived from
        ``ts``/``dur`` containment per (pid, tid) track, rooted at the
        track's process name (the cell label in runner exports)."""
        events = doc.get("traceEvents", ())
        names: dict[int, str] = {}
        tracks: dict[tuple, list[dict]] = {}
        for event in events:
            if event.get("ph") == "M" and \
                    event.get("name") == "process_name":
                names[event.get("pid")] = \
                    event.get("args", {}).get("name", "?")
            elif event.get("ph") == "X":
                tracks.setdefault(
                    (event.get("pid"), event.get("tid")), []).append(event)
        for track, track_events in sorted(
                tracks.items(), key=lambda kv: str(kv[0])):
            root = names.get(track[0])
            prefix = (root,) if root else ()
            # earlier start first; at equal starts the longer span is
            # the parent, so it must be pushed first
            track_events.sort(key=lambda e: (e.get("ts", 0),
                                             -e.get("dur", 0)))
            stack: list[dict] = []

            def _close_top() -> None:
                top = stack.pop()
                path = prefix + tuple(e["name"] for e in stack) \
                    + (top["name"],)
                self._add_span(path, top["dur"],
                               max(top["dur"] - top["child"], 0.0))

            for event in track_events:
                ts = event.get("ts", 0)
                dur = max(event.get("dur", 0.0), 0.0)
                while stack and ts >= stack[-1]["end"] - 1e-9:
                    _close_top()
                if stack:
                    stack[-1]["child"] += dur
                stack.append({"name": event.get("name", "?"),
                              "end": ts + dur, "dur": dur, "child": 0.0})
            while stack:
                _close_top()

    # -- reporting -----------------------------------------------------------

    def attribution(self) -> list[list]:
        """Rows [phase, count, wall s, self s, self share] by self time."""
        total_self = sum(e["self_us"] for e in self.phases.values()) or 1.0
        rows = []
        for name, entry in sorted(self.phases.items(),
                                  key=lambda kv: -kv[1]["self_us"]):
            rows.append([
                name, entry["count"],
                entry["wall_us"] / 1e6, entry["self_us"] / 1e6,
                f"{entry['self_us'] / total_self:.1%}",
            ])
        return rows

    def top_spans(self, n: int = 10) -> list[SpanRecord]:
        """The ``n`` individually slowest spans (by wall time)."""
        return sorted(self.spans, key=lambda s: -s.wall_us)[:n]

    def collapsed_lines(self) -> list[str]:
        """Flamegraph-compatible collapsed stacks: ``a;b;c <self_us>``.

        Sample weights are integer µs of *self* time, so the flamegraph's
        widths sum to real wall time without double-counting parents.
        """
        lines = []
        for path, self_us in sorted(self.stacks.items()):
            weight = int(round(self_us))
            if weight <= 0:
                continue
            lines.append(";".join(path) + f" {weight}")
        return lines

    def render(self) -> str:
        """The per-phase attribution report (tables, printable)."""
        parts = []
        rows = self.attribution()
        if rows:
            parts.append(format_table(
                ["phase", "spans", "wall s", "self s", "self%"],
                rows, "per-phase attribution (self time)",
                align=["l", "r", "r", "r", "r"]))
        if self.sched_seconds:
            parts.append(format_table(
                ["scheduler phase", "seconds"],
                [[kind, seconds] for kind, seconds in
                 sorted(self.sched_seconds.items())],
                "scheduler phases (sched.cache STATS)",
                align=["l", "r"]))
        if self.sim_events:
            parts.append(format_table(
                ["sim lifecycle event", "count"],
                [[name, count] for name, count in
                 sorted(self.sim_events.items())],
                "simulator loop-buffer lifecycle",
                align=["l", "r"]))
        if not parts:
            parts.append("(empty profile: no spans, phases or events)")
        return "\n\n".join(parts)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_cells(cls, cells: list[dict]) -> "PhaseProfile":
        profile = cls()
        profile.add_cells(cells)
        return profile

    @classmethod
    def from_chrome_trace(cls, doc: dict) -> "PhaseProfile":
        profile = cls()
        profile.add_chrome_trace(doc)
        return profile
