"""The unified benchmark harness: specs, repeated samples, one schema.

A :class:`BenchSpec` names a measurement (``sim.fast``, ``sched.opt``,
``obs.on``...) and how to take *one* sample of it; :func:`run_bench`
takes several and folds them into a :class:`BenchResult` — the single
schema every benchmark in this repo reports in and the history store
(:mod:`repro.obs.perf.history`) persists:

* ``samples`` — every raw observation (never just the best one);
* ``median`` / ``mad`` — robust center and noise scale, the only two
  statistics the regression gate trusts;
* ``phases`` — per-phase sample series (compile/retarget/simulate,
  list/modulo...), so a flagged regression can be blamed on the phase
  that caused it;
* ``config`` + ``config_hash`` — what was measured (grid, mode,
  variant), the history key;
* ``env`` + ``env_fingerprint`` — where it was measured, so absolute
  seconds recorded on one machine are never gated against another's;
* ``git_sha`` — when (in history terms) it was measured.

A :class:`RatioSpec` derives a dimensionless series from two specs
(sample-wise numerator/denominator — e.g. ``sim.speedup = sim.ref /
sim.fast``).  Ratios are machine-portable, so they stay gateable even
across environment changes where raw seconds are not.

``REPRO_PERF_INJECT=bench:phase:factor`` multiplies one phase of one
bench after measurement — the test hook CI and the acceptance checks use
to prove the regression gate actually fires and blames the right phase.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from typing import Callable

ENV_INJECT = "REPRO_PERF_INJECT"

#: result-record schema version (bump on incompatible changes)
SCHEMA = "repro-perf-v1"


class BenchError(RuntimeError):
    """A benchmark failed its own invariants (non-determinism, divergent
    summaries across variants, unknown spec...)."""


def mad(values: list[float], center: float | None = None) -> float:
    """Median absolute deviation — the robust noise scale the gate uses."""
    if not values:
        return 0.0
    if center is None:
        center = statistics.median(values)
    return statistics.median(abs(v - center) for v in values)


def config_hash(config: dict) -> str:
    """Stable short digest of a JSON-able config dict (the history key)."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def env_fingerprint() -> dict:
    """Where a sample was taken: everything that moves absolute seconds."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }


def fingerprint_key(env: dict) -> str:
    """Short digest of an environment fingerprint dict."""
    return config_hash({k: env.get(k) for k in
                        ("python", "platform", "cpu_count")})


def git_sha() -> str | None:
    """Current short commit SHA, or ``None`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


# ---------------------------------------------------------------------------
# specs and samples


@dataclass
class Sample:
    """One observation of a benchmark.

    ``value`` is the headline number (seconds for timing benches);
    ``phases`` attributes it (phase name -> seconds); ``meta`` is small
    JSON-able context (cell counts, digests); ``check`` is an arbitrary
    in-process object (e.g. the run summaries) used only for
    equivalence diffing — it never reaches the serialized record.
    """

    value: float
    phases: dict[str, float] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    check: object | None = None


@dataclass(frozen=True)
class BenchSpec:
    """One registered measurement.

    ``fn(mode)`` takes a single cold :class:`Sample`.  ``direction`` says
    which way is better (``"lower"`` for seconds, ``"higher"`` for
    speedups); ``budgets[mode]`` is an absolute floor (higher-better) or
    ceiling (lower-better) enforced on the median regardless of history.
    ``digest_group`` names an equivalence class: every spec in the group
    must produce byte-identical ``meta["digest"]`` values in one suite
    run (e.g. ref and fast engine summaries must agree).
    ``gate_budget`` overrides the regression gate's per-unit relative
    budget for this spec alone — for benches whose between-run noise is
    wider than their unit's default assumes (``None`` keeps the
    default).
    """

    name: str
    fn: Callable[[str], Sample]
    config_fn: Callable[[str], dict]
    unit: str = "s"
    direction: str = "lower"
    digest_group: str | None = None
    budgets: dict = field(default_factory=dict)
    gate_budget: float | None = None
    help: str = ""


@dataclass(frozen=True)
class RatioSpec:
    """A derived sample-wise ratio of two registered specs."""

    name: str
    numerator: str
    denominator: str
    unit: str = "x"
    direction: str = "higher"
    budgets: dict = field(default_factory=dict)
    gate_budget: float | None = None
    help: str = ""


@dataclass
class BenchResult:
    """The one schema every benchmark reports in (see module docstring)."""

    name: str
    unit: str
    direction: str
    mode: str
    samples: list[float]
    phases: dict[str, list[float]]
    config: dict
    config_hash: str
    env: dict
    env_fingerprint: str
    git_sha: str | None
    meta: dict = field(default_factory=dict)
    check: object | None = None

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def mad(self) -> float:
        return mad(self.samples)

    def phase_median(self, phase: str) -> float:
        return statistics.median(self.phases[phase])

    def as_record(self) -> dict:
        """The JSON-able history-line form (``check`` never serializes)."""
        return {
            "schema": SCHEMA,
            "bench": self.name,
            "unit": self.unit,
            "direction": self.direction,
            "mode": self.mode,
            "samples": [round(s, 6) for s in self.samples],
            "median": round(self.median, 6),
            "mad": round(self.mad, 6),
            "phases": {
                name: {
                    "samples": [round(s, 6) for s in series],
                    "median": round(statistics.median(series), 6),
                }
                for name, series in sorted(self.phases.items())
            },
            "config": self.config,
            "config_hash": self.config_hash,
            "env": self.env,
            "env_fingerprint": self.env_fingerprint,
            "git_sha": self.git_sha,
            "meta": self.meta,
        }


# ---------------------------------------------------------------------------
# registry


_REGISTRY: dict[str, BenchSpec | RatioSpec] = {}


def register(spec: BenchSpec | RatioSpec) -> BenchSpec | RatioSpec:
    """Register (or replace) a spec under its name; returns it."""
    _REGISTRY[spec.name] = spec
    return spec


def get_spec(name: str) -> BenchSpec | RatioSpec:
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise BenchError(f"unknown bench {name!r}; registered: {known}") \
            from None


def bench_names() -> list[str]:
    _ensure_builtins()
    return sorted(_REGISTRY)


def _ensure_builtins() -> None:
    # the built-in specs live in a sibling module that imports the runner;
    # load them lazily so `import repro.obs` stays light
    from repro.obs.perf import benches

    benches.ensure_registered()


# ---------------------------------------------------------------------------
# the injection test hook


def parse_injections(value: str | None = None) -> dict[tuple[str, str], float]:
    """``"bench:phase:factor[,...]"`` -> {(bench, phase): factor}."""
    if value is None:
        value = os.environ.get(ENV_INJECT, "")
    injections: dict[tuple[str, str], float] = {}
    for part in value.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            bench, phase, factor = part.split(":")
            injections[(bench, phase)] = float(factor)
        except ValueError:
            raise BenchError(
                f"bad {ENV_INJECT} entry {part!r}; "
                "expected bench:phase:factor") from None
    return injections


def _apply_injection(name: str, sample: Sample,
                     injections: dict[tuple[str, str], float]) -> None:
    for (bench, phase), factor in injections.items():
        if bench != name or phase not in sample.phases:
            continue
        before = sample.phases[phase]
        sample.phases[phase] = before * factor
        sample.value += sample.phases[phase] - before
        sample.meta.setdefault("injected", []).append(
            f"{phase}x{factor:g}")


# ---------------------------------------------------------------------------
# running


def run_bench(spec: BenchSpec, mode: str = "quick", samples: int = 3,
              injections: dict[tuple[str, str], float] | None = None,
              progress: Callable[[str], None] | None = None) -> BenchResult:
    """Take ``samples`` cold observations of one spec and fold them.

    Every sample's ``meta["digest"]`` (when present) must agree across
    repeats — a benchmark whose measured artifact changes between runs is
    broken, not noisy.
    """
    if samples < 1:
        raise BenchError("samples must be >= 1")
    if injections is None:
        injections = parse_injections()
    config = dict(spec.config_fn(mode))
    config.setdefault("bench", spec.name)
    config.setdefault("mode", mode)
    taken: list[Sample] = []
    for i in range(samples):
        t0 = time.perf_counter()
        sample = spec.fn(mode)
        elapsed = time.perf_counter() - t0
        _apply_injection(spec.name, sample, injections)
        sample.meta.setdefault("sample_wall_s", round(elapsed, 3))
        if taken and sample.meta.get("digest") != \
                taken[0].meta.get("digest"):
            raise BenchError(
                f"{spec.name}: non-deterministic artifact across repeats "
                f"(sample {i} digest {sample.meta.get('digest')!r} != "
                f"{taken[0].meta.get('digest')!r})")
        taken.append(sample)
        if progress is not None:
            progress(f"{spec.name}[{i + 1}/{samples}] "
                     f"{sample.value:.3f}{spec.unit}")
    phase_names = sorted({name for s in taken for name in s.phases})
    meta = dict(taken[0].meta)
    meta.pop("sample_wall_s", None)
    meta["sample_walls_s"] = [s.meta.get("sample_wall_s") for s in taken]
    env = env_fingerprint()
    return BenchResult(
        name=spec.name,
        unit=spec.unit,
        direction=spec.direction,
        mode=mode,
        samples=[s.value for s in taken],
        phases={name: [s.phases.get(name, 0.0) for s in taken]
                for name in phase_names},
        config=config,
        config_hash=config_hash(config),
        env=env,
        env_fingerprint=fingerprint_key(env),
        git_sha=git_sha(),
        meta=meta,
        check=taken[0].check,
    )


def _derive_ratio(spec: RatioSpec, num: BenchResult,
                  den: BenchResult) -> BenchResult:
    if len(num.samples) != len(den.samples):
        raise BenchError(
            f"{spec.name}: sample counts differ "
            f"({len(num.samples)} vs {len(den.samples)})")
    samples = []
    for a, b in zip(num.samples, den.samples):
        samples.append(a / b if b else float("inf"))
    phases = {}
    for name in sorted(set(num.phases) & set(den.phases)):
        phases[name] = [
            (a / b if b else float("inf"))
            for a, b in zip(num.phases[name], den.phases[name])
        ]
    config = {
        "bench": spec.name,
        "mode": num.mode,
        "numerator": num.config_hash,
        "denominator": den.config_hash,
    }
    env = env_fingerprint()
    return BenchResult(
        name=spec.name,
        unit=spec.unit,
        direction=spec.direction,
        mode=num.mode,
        samples=samples,
        phases=phases,
        config=config,
        config_hash=config_hash(config),
        env=env,
        env_fingerprint=fingerprint_key(env),
        git_sha=git_sha(),
        meta={"numerator": num.name, "denominator": den.name},
    )


def _check_digest_groups(results: dict[str, BenchResult]) -> None:
    groups: dict[str, list[BenchResult]] = {}
    for result in results.values():
        spec = _REGISTRY.get(result.name)
        if isinstance(spec, BenchSpec) and spec.digest_group:
            groups.setdefault(spec.digest_group, []).append(result)
    for group, members in sorted(groups.items()):
        digests = {m.meta.get("digest") for m in members}
        if len(digests) > 1:
            detail = ", ".join(
                f"{m.name}={m.meta.get('digest')}" for m in members)
            first_diff = _first_check_diff(members)
            raise BenchError(
                f"digest group {group!r} diverged: {detail}"
                + (f"; first differing entry: {first_diff}"
                   if first_diff else ""))


def _first_check_diff(members: list[BenchResult]) -> str | None:
    """Diff the in-process check objects (lists) of a diverged group."""
    checks = [m.check for m in members if isinstance(m.check, list)]
    if len(checks) < 2:
        return None
    a, b = checks[0], checks[1]
    for i, (x, y) in enumerate(zip(a, b)):
        if x != y:
            return f"[{i}] {x!r} != {y!r}"
    if len(a) != len(b):
        return f"length {len(a)} != {len(b)}"
    return None


def run_suite(names: list[str], mode: str = "quick", samples: int = 3,
              injections: dict[tuple[str, str], float] | None = None,
              progress: Callable[[str], None] | None = None,
              ) -> dict[str, BenchResult]:
    """Run the named benches (pulling in ratio dependencies), in order.

    Returns ``{name: BenchResult}``; ratio specs are derived after their
    inputs run, and every digest group is cross-checked — divergent
    artifacts (e.g. ref-vs-fast engine summaries) abort the suite.
    """
    _ensure_builtins()
    ordered: list[str] = []
    seen: set[str] = set()

    def _want(name: str) -> None:
        if name in seen:
            return
        spec = get_spec(name)
        if isinstance(spec, RatioSpec):
            _want(spec.numerator)
            _want(spec.denominator)
        seen.add(name)
        ordered.append(name)

    for name in names:
        _want(name)

    results: dict[str, BenchResult] = {}
    for name in ordered:
        spec = get_spec(name)
        if isinstance(spec, RatioSpec):
            results[name] = _derive_ratio(
                spec, results[spec.numerator], results[spec.denominator])
        else:
            results[name] = run_bench(spec, mode, samples, injections,
                                      progress)
    _check_digest_groups(results)
    return results


def check_budget(result: BenchResult) -> str | None:
    """Absolute budget check; returns a failure message or ``None``."""
    spec = _REGISTRY.get(result.name)
    if spec is None:
        return None
    floor = spec.budgets.get(result.mode)
    if floor is None:
        return None
    median = result.median
    if result.direction == "higher":
        if median < floor:
            return (f"{result.name}: median {median:.3f}{result.unit} "
                    f"below budget floor {floor:.3f}{result.unit}")
    else:
        if median > floor:
            return (f"{result.name}: median {median:.3f}{result.unit} "
                    f"above budget ceiling {floor:.3f}{result.unit}")
    return None
