"""Noise-aware regression and drift detection over benchmark series.

The gate never fires on a single noisy sample.  A fresh
:class:`~repro.obs.perf.harness.BenchResult` (itself several samples) is
compared to the stored baseline by *medians*, and the allowed movement is
the larger of a relative budget and a multiple of the *baseline's* noise
scale::

    allowed = max(budget * |baseline_median|, mad_k * base_mad)

so a quiet baseline is held to the relative budget while a noisy one
must move beyond its own noise floor to alarm.  Only the baseline MAD
counts: letting the fresh run's spread widen the gate would let a
regression that arrives with extra variance mask itself.  Direction-aware: ``lower``
benches (seconds) regress upward, ``higher`` benches (speedup ratios)
regress downward.  When a regression fires and both sides carry phase
series, the verdict names the phase with the largest worsening — the
difference between *detectable* and *diagnosable*.

:func:`trend` guards the other failure mode: a slow drift where every
step stays under the gate but the series walks away over weeks.  It
compares the median of the newest ``window`` records against the oldest
``window`` across the stored trajectory and alarms on cumulative
movement beyond the budget.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.obs.perf.harness import BenchResult, mad

#: default relative movement allowed before the gate fires (ratios —
#: dimensionless, so run-to-run machine noise mostly divides out)
DEFAULT_BUDGET = 0.25
#: default budget for absolute-unit (seconds) benches: machine load
#: moves raw wall/CPU seconds by tens of percent run-to-run even on one
#: box, and the in-run MAD cannot see that between-run component, so
#: seconds get a wide gross-error budget while the ratio benches and
#: the absolute budget floors carry the tight contract
DEFAULT_SECONDS_BUDGET = 0.5
#: default noise multiplier: movement must also exceed mad_k * noise
DEFAULT_MAD_K = 5.0
#: absolute floor under the noise term, so an all-zero MAD series
#: (timer-resolution-flat samples) still tolerates timer jitter
NOISE_FLOOR_S = 1e-4

#: dimensionless units — speedup ratios ("x") and fractions like cache
#: hit rates ("frac") — are machine-portable, so they keep the tight
#: ratio budget and stay gateable across environment changes
PORTABLE_UNITS = ("x", "frac")

OK = "ok"
REGRESSION = "regression"
IMPROVEMENT = "improvement"
NO_BASELINE = "no-baseline"
ENV_MISMATCH = "env-mismatch"
BUDGET_FAIL = "budget-fail"

#: statuses that fail the gate
FAILING = (REGRESSION, BUDGET_FAIL)


@dataclass
class Verdict:
    """One bench's comparison outcome."""

    bench: str
    status: str = OK
    unit: str = "s"
    direction: str = "lower"
    new_median: float = 0.0
    base_median: float | None = None
    ratio: float | None = None
    allowed: float = 0.0
    noise: float = 0.0
    phase: str | None = None
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in FAILING

    def as_dict(self) -> dict:
        return {
            "bench": self.bench,
            "status": self.status,
            "unit": self.unit,
            "direction": self.direction,
            "new_median": round(self.new_median, 6),
            "base_median": (round(self.base_median, 6)
                            if self.base_median is not None else None),
            "ratio": (round(self.ratio, 4)
                      if self.ratio is not None else None),
            "allowed": round(self.allowed, 6),
            "noise": round(self.noise, 6),
            "phase": self.phase,
            "detail": self.detail,
        }


def _phase_series(record_or_result) -> dict[str, list[float]]:
    if isinstance(record_or_result, BenchResult):
        return record_or_result.phases
    phases = record_or_result.get("phases", {})
    return {name: list(entry.get("samples", []))
            for name, entry in phases.items()}


def _blame_phase(new: BenchResult, baseline: dict,
                 direction: str) -> tuple[str | None, str]:
    """Name the phase whose median moved the most in the worse direction."""
    base_phases = _phase_series(baseline)
    worst_name, worst_delta, worst_line = None, 0.0, ""
    for name, series in new.phases.items():
        base_series = base_phases.get(name)
        if not series or not base_series:
            continue
        new_med = statistics.median(series)
        base_med = statistics.median(base_series)
        delta = new_med - base_med
        if direction == "higher":
            delta = -delta  # a drop is the worsening direction
        if delta > worst_delta:
            worst_name, worst_delta = name, delta
            sign = "-" if direction == "higher" else "+"
            worst_line = (f"phase {name!r}: {base_med:.3f} -> "
                          f"{new_med:.3f} ({sign}{abs(worst_delta):.3f})")
    return worst_name, worst_line


def compare_result(new: BenchResult, baseline: dict | None,
                   env_match: bool = True,
                   budget: float | None = None,
                   mad_k: float = DEFAULT_MAD_K) -> Verdict:
    """Gate one fresh result against its stored baseline record.

    ``baseline=None`` is the first run of a series: record it, never
    alarm.  ``env_match=False`` (the baseline was taken on a different
    machine) demotes absolute-unit benches to informational — only
    dimensionless ratio benches stay gateable across environments.
    ``budget=None`` picks the per-unit default
    (:data:`DEFAULT_BUDGET` for ratios, :data:`DEFAULT_SECONDS_BUDGET`
    for absolute units).
    """
    if budget is None:
        budget = DEFAULT_BUDGET if new.unit in PORTABLE_UNITS \
            else DEFAULT_SECONDS_BUDGET
    verdict = Verdict(bench=new.name, unit=new.unit,
                      direction=new.direction, new_median=new.median)
    if baseline is None:
        verdict.status = NO_BASELINE
        verdict.detail = "first run for this (bench, config); recorded"
        return verdict
    if not env_match and new.unit not in PORTABLE_UNITS:
        verdict.status = ENV_MISMATCH
        verdict.base_median = baseline.get("median")
        verdict.detail = (
            "baseline was recorded on a different environment "
            f"({baseline.get('env_fingerprint')}); absolute "
            f"{new.unit} not gated")
        return verdict

    base_median = float(baseline.get("median", 0.0))
    base_mad = float(baseline.get("mad", 0.0))
    new_median = new.median
    noise = max(base_mad, NOISE_FLOOR_S)
    allowed = max(budget * abs(base_median), mad_k * noise)
    delta = new_median - base_median
    if new.direction == "higher":
        delta = -delta  # for ratios, going *down* is the regression

    verdict.base_median = base_median
    verdict.ratio = (new_median / base_median) if base_median else None
    verdict.allowed = allowed
    verdict.noise = noise
    if delta > allowed:
        verdict.status = REGRESSION
        phase, line = _blame_phase(new, baseline, new.direction)
        verdict.phase = phase
        arrow = f"{base_median:.3f} -> {new_median:.3f}{new.unit}"
        verdict.detail = (
            f"median {arrow} exceeds allowance {allowed:.3f} "
            f"(budget {budget:.0%}, noise {noise:.4f})"
            + (f"; {line}" if line else ""))
    elif -delta > allowed:
        verdict.status = IMPROVEMENT
        verdict.detail = (f"median {base_median:.3f} -> "
                          f"{new_median:.3f}{new.unit}; consider "
                          "re-recording the baseline")
    else:
        verdict.status = OK
        verdict.detail = (f"median {new_median:.3f}{new.unit} within "
                          f"{allowed:.3f} of baseline {base_median:.3f}")
    return verdict


# ---------------------------------------------------------------------------
# drift over the stored trajectory


@dataclass
class TrendVerdict:
    """Cumulative-drift outcome for one stored series."""

    bench: str
    mode: str
    config_hash: str
    status: str
    points: int
    first_median: float | None = None
    last_median: float | None = None
    drift: float | None = None
    detail: str = ""
    rows: list = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.status == REGRESSION

    def as_dict(self) -> dict:
        return {
            "bench": self.bench,
            "mode": self.mode,
            "config_hash": self.config_hash,
            "status": self.status,
            "points": self.points,
            "first_median": self.first_median,
            "last_median": self.last_median,
            "drift": (round(self.drift, 4)
                      if self.drift is not None else None),
            "detail": self.detail,
        }


def trend(records: list[dict], budget: float | None = None,
          mad_k: float = DEFAULT_MAD_K, window: int = 3) -> TrendVerdict:
    """Detect slow drift across one series' stored records (time order).

    The oldest and newest ``window`` medians are themselves medianed, so
    a single outlier record at either end cannot fake (or mask) a drift;
    the alarm uses the same budget-or-noise allowance as the step gate
    (per-unit default, like :func:`compare_result`), applied to the
    cumulative movement.
    """
    if budget is None and records:
        budget = DEFAULT_BUDGET if records[0].get("unit") == "x" \
            else DEFAULT_SECONDS_BUDGET
    elif budget is None:
        budget = DEFAULT_BUDGET
    if not records:
        return TrendVerdict("?", "?", "?", NO_BASELINE, 0,
                            detail="empty series")
    head = records[0]
    bench = head.get("bench", "?")
    verdict = TrendVerdict(
        bench=bench,
        mode=head.get("mode", "?"),
        config_hash=head.get("config_hash", "?"),
        status=OK,
        points=len(records),
    )
    medians = [float(r.get("median", 0.0)) for r in records]
    verdict.rows = [
        [r.get("recorded_at", "?"), r.get("git_sha") or "?",
         float(r.get("median", 0.0)), float(r.get("mad", 0.0)),
         len(r.get("samples", []))]
        for r in records
    ]
    if len(records) < 2:
        verdict.status = NO_BASELINE
        verdict.detail = "need >= 2 records to measure drift"
        return verdict

    window = max(1, min(window, len(medians) // 2 or 1))
    first = statistics.median(medians[:window])
    last = statistics.median(medians[-window:])
    direction = head.get("direction", "lower")
    # run-to-run noise from consecutive differences (a steady drift has
    # near-constant steps, so it contributes ~nothing here — using the
    # spread of the medians themselves would let the drift inflate its
    # own allowance and mask itself), floored by the in-run MADs
    steps = [b - a for a, b in zip(medians, medians[1:])]
    noise = max(max(float(r.get("mad", 0.0)) for r in records),
                mad(steps), NOISE_FLOOR_S)
    allowed = max(budget * abs(first), mad_k * noise)
    delta = last - first
    if direction == "higher":
        delta = -delta

    verdict.first_median = first
    verdict.last_median = last
    verdict.drift = (last - first) / first if first else None
    if delta > allowed:
        verdict.status = REGRESSION
        verdict.detail = (
            f"cumulative drift {first:.3f} -> {last:.3f} over "
            f"{len(records)} records exceeds allowance {allowed:.3f} "
            f"(budget {budget:.0%}, noise {noise:.4f})")
    elif -delta > allowed:
        verdict.status = IMPROVEMENT
        verdict.detail = (f"series improved {first:.3f} -> {last:.3f} "
                          f"over {len(records)} records")
    else:
        verdict.detail = (f"drift {first:.3f} -> {last:.3f} within "
                          f"allowance {allowed:.3f}")
    return verdict
