"""``python -m repro.obs perf`` — record, gate and trend benchmarks.

Subcommands::

    # list registered benches
    python -m repro.obs perf list

    # take fresh samples and append them to the history
    python -m repro.obs perf record --mode quick --samples 3

    # the CI gate: fresh samples vs. the stored baseline; exit 1 on a
    # regression beyond the noise-aware allowance or an absolute budget
    python -m repro.obs perf compare --history BENCH_history.jsonl

    # the trajectory: every stored series, with cumulative-drift alarms
    python -m repro.obs perf trend

``compare`` never writes to the baseline history itself (so running it
twice on one SHA compares against the same baseline both times); pass
``--record-out`` to append the fresh samples to a separate artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.perf import harness
from repro.obs.perf.harness import BenchError, check_budget, run_suite
from repro.obs.perf.history import DEFAULT_HISTORY, History
from repro.obs.perf.regress import (
    BUDGET_FAIL,
    DEFAULT_BUDGET,
    DEFAULT_MAD_K,
    DEFAULT_SECONDS_BUDGET,
    Verdict,
    compare_result,
    trend,
)
from repro.runner.summary import format_table


def add_perf_parser(sub) -> None:
    """Attach the ``perf`` subcommand tree to the obs CLI parser."""
    perf = sub.add_parser(
        "perf", help="record/gate/trend benchmarks (unified harness)")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    def _common(p, history_default=DEFAULT_HISTORY):
        p.add_argument("--bench", action="append", metavar="NAME[,NAME]",
                       help="bench names (default: the standard suite); "
                            "repeatable or comma-separated")
        p.add_argument("--mode", choices=("quick", "full"),
                       default="quick", help="grid size (default quick)")
        p.add_argument("--samples", type=int, default=None, metavar="N",
                       help="samples per bench (default 3 quick, 2 full)")
        p.add_argument("--history", type=Path, default=Path(history_default),
                       metavar="PATH",
                       help=f"history JSONL (default {history_default})")
        p.add_argument("--json", type=Path, default=None, metavar="OUT",
                       help="also write results/verdicts as JSON")

    listing = perf_sub.add_parser("list", help="registered benches")
    listing.add_argument("--json", action="store_true",
                         help="emit JSON instead of a table")

    record = perf_sub.add_parser(
        "record", help="take fresh samples and append them to the history")
    _common(record)
    record.add_argument("--no-append", action="store_true",
                        help="measure and print without touching history")

    compare = perf_sub.add_parser(
        "compare",
        help="fresh samples vs. stored baseline; exit 1 on regression")
    _common(compare)
    compare.add_argument("--budget", type=float, default=None,
                         metavar="F",
                         help="relative movement allowed (default "
                              f"{DEFAULT_BUDGET} for ratios, "
                              f"{DEFAULT_SECONDS_BUDGET} for seconds)")
    compare.add_argument("--mad-k", type=float, default=DEFAULT_MAD_K,
                         metavar="K",
                         help="noise multiplier: movement must exceed "
                              f"K*MAD too (default {DEFAULT_MAD_K})")
    compare.add_argument("--record-out", type=Path, default=None,
                         metavar="PATH",
                         help="append the fresh samples to this separate "
                              "history file (never the baseline)")

    trend_p = perf_sub.add_parser(
        "trend", help="render stored trajectories; exit 1 on drift")
    trend_p.add_argument("--bench", action="append", metavar="NAME[,NAME]",
                         help="restrict to these bench names")
    trend_p.add_argument("--history", type=Path,
                         default=Path(DEFAULT_HISTORY), metavar="PATH")
    trend_p.add_argument("--budget", type=float, default=None, metavar="F")
    trend_p.add_argument("--json", type=Path, default=None, metavar="OUT")


def _bench_names(args) -> list[str]:
    if not getattr(args, "bench", None):
        from repro.obs.perf.benches import DEFAULT_SUITE

        return list(DEFAULT_SUITE)
    names: list[str] = []
    for chunk in args.bench:
        names.extend(n.strip() for n in chunk.split(",") if n.strip())
    return names


def _samples(args) -> int:
    if args.samples is not None:
        return max(1, args.samples)
    return 3 if args.mode == "quick" else 2


def _result_rows(results) -> list[list]:
    rows = []
    for result in results.values():
        rows.append([
            result.name, result.mode, len(result.samples),
            result.median, result.mad, result.unit,
            result.config_hash,
        ])
    return rows


def _render_results(results) -> str:
    return format_table(
        ["bench", "mode", "n", "median", "mad", "unit", "config"],
        _result_rows(results), "benchmark results",
        align=["l", "l", "r", "r", "r", "l", "l"])


def _render_verdicts(verdicts: list[Verdict]) -> str:
    rows = []
    for v in verdicts:
        rows.append([
            v.bench, v.status,
            v.base_median if v.base_median is not None else "-",
            v.new_median,
            f"{v.ratio:.3f}" if v.ratio is not None else "-",
            v.phase or "-",
        ])
    return format_table(
        ["bench", "status", "baseline", "new", "ratio", "blamed phase"],
        rows, "regression gate",
        align=["l", "l", "r", "r", "r", "l"])


def cmd_list(args) -> int:
    names = harness.bench_names()
    if args.json:
        specs = []
        for name in names:
            spec = harness.get_spec(name)
            specs.append({
                "name": name,
                "kind": ("ratio" if isinstance(spec, harness.RatioSpec)
                         else "timing"),
                "unit": spec.unit,
                "direction": spec.direction,
                "budgets": dict(spec.budgets),
                "gate_budget": spec.gate_budget,
                "help": spec.help,
            })
        print(json.dumps(specs, indent=2))
        return 0
    rows = []
    for name in names:
        spec = harness.get_spec(name)
        kind = "ratio" if isinstance(spec, harness.RatioSpec) else "timing"
        rows.append([name, kind, spec.unit, spec.direction, spec.help])
    print(format_table(["bench", "kind", "unit", "better", "description"],
                       rows, "registered benches"))
    return 0


def cmd_record(args) -> int:
    names = _bench_names(args)
    results = run_suite(names, args.mode, _samples(args),
                        progress=lambda line: print(f"  {line}"))
    print(_render_results(results))
    appended = []
    if not args.no_append:
        history = History(args.history)
        for result in results.values():
            appended.append(history.append(result))
        print(f"\nappended {len(appended)} record(s) to {args.history}")
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(
            {r.name: r.as_record() for r in results.values()},
            indent=2, sort_keys=True) + "\n")
    failures = [msg for r in results.values()
                if (msg := check_budget(r))]
    for msg in failures:
        print(f"BUDGET: {msg}", file=sys.stderr)
    return 1 if failures else 0


def cmd_compare(args) -> int:
    names = _bench_names(args)
    history = History(args.history)
    results = run_suite(names, args.mode, _samples(args),
                        progress=lambda line: print(f"  {line}"))
    verdicts: list[Verdict] = []
    for result in results.values():
        baseline, env_match = history.baseline(
            result.name, result.config_hash, result.env_fingerprint)
        # --budget overrides everything; otherwise a spec may carry its
        # own gate budget (serve.speedup: cold and warm noise sources
        # are independent, so the ratio is wider than engine-vs-engine
        # speedups); None falls through to the per-unit default
        budget = args.budget if args.budget is not None \
            else harness.get_spec(result.name).gate_budget
        verdict = compare_result(result, baseline, env_match,
                                 budget=budget, mad_k=args.mad_k)
        budget_msg = check_budget(result)
        if budget_msg and not verdict.failed:
            verdict.status = BUDGET_FAIL
            verdict.detail = budget_msg
        verdicts.append(verdict)

    print(_render_verdicts(verdicts))
    for v in verdicts:
        print(f"  {v.bench}: {v.detail}")
    if args.record_out:
        out = History(args.record_out)
        for result in results.values():
            out.append(result)
        print(f"\nappended {len(results)} record(s) to {args.record_out}")
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps({
            "results": {r.name: r.as_record() for r in results.values()},
            "verdicts": [v.as_dict() for v in verdicts],
        }, indent=2, sort_keys=True) + "\n")
    failed = [v for v in verdicts if v.failed]
    if failed:
        for v in failed:
            print(f"GATE FAILED: {v.bench}: {v.detail}", file=sys.stderr)
        return 1
    print(f"\ngate ok: {len(verdicts)} bench(es), no regression")
    return 0


def cmd_trend(args) -> int:
    history = History(args.history)
    series = history.benches()
    if getattr(args, "bench", None):
        wanted = set()
        for chunk in args.bench:
            wanted.update(n.strip() for n in chunk.split(",") if n.strip())
        series = [s for s in series if s[0] in wanted]
    if not series:
        print(f"no matching series in {args.history}", file=sys.stderr)
        return 2
    verdicts = []
    for bench, mode, config_hash in series:
        records = history.records(bench=bench, config_hash=config_hash)
        verdicts.append(trend(records, budget=args.budget))
    rows = []
    for v in verdicts:
        rows.append([
            v.bench, v.mode, v.points,
            v.first_median if v.first_median is not None else "-",
            v.last_median if v.last_median is not None else "-",
            f"{v.drift:+.1%}" if v.drift is not None else "-",
            v.status,
        ])
    print(format_table(
        ["bench", "mode", "points", "first", "last", "drift", "status"],
        rows, "benchmark trajectories",
        align=["l", "l", "r", "r", "r", "r", "l"]))
    for v in verdicts:
        if v.status != "ok":
            print(f"  {v.bench} ({v.mode}): {v.detail}")
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(
            [v.as_dict() for v in verdicts], indent=2, sort_keys=True)
            + "\n")
    drifted = [v for v in verdicts if v.failed]
    if drifted:
        for v in drifted:
            print(f"DRIFT: {v.bench} ({v.mode}): {v.detail}",
                  file=sys.stderr)
        return 1
    return 0


def main_perf(args) -> int:
    try:
        if args.perf_command == "list":
            return cmd_list(args)
        if args.perf_command == "record":
            return cmd_record(args)
        if args.perf_command == "compare":
            return cmd_compare(args)
        assert args.perf_command == "trend"
        return cmd_trend(args)
    except BenchError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
