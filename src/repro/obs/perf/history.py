"""Append-only JSONL benchmark history keyed by (bench, config hash).

One line per :meth:`~repro.obs.perf.harness.BenchResult.as_record`, plus
a ``recorded_at`` wall-clock stamp.  The committed seed lives at
``BENCH_history.jsonl`` in the repo root; CI compares fresh samples
against the latest matching baseline in it, and the nightly job appends
full-mode samples so the trajectory (``perf trend``) has a time axis.

Baseline resolution prefers the most recent record taken in the *same*
environment fingerprint; when only foreign-environment records exist the
newest of those is returned with ``env_match=False`` so the caller can
demote absolute-seconds comparisons to informational (ratios stay
gateable — see :mod:`repro.obs.perf.regress`).
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.perf.harness import BenchResult

#: the committed seed history at the repo root
DEFAULT_HISTORY = "BENCH_history.jsonl"


class History:
    """An append-only JSONL time series of benchmark records."""

    def __init__(self, path: str | Path = DEFAULT_HISTORY) -> None:
        self.path = Path(path)

    # -- writing -------------------------------------------------------------

    def append(self, result: BenchResult | dict, **extra) -> dict:
        """Append one record (a BenchResult or a pre-built dict) and
        return the dict actually written."""
        record = (result.as_record() if isinstance(result, BenchResult)
                  else dict(result))
        record.setdefault(
            "recorded_at",
            datetime.now(timezone.utc).isoformat(timespec="seconds"))
        record.update(extra)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    # -- reading -------------------------------------------------------------

    def records(self, bench: str | None = None,
                config_hash: str | None = None,
                mode: str | None = None) -> list[dict]:
        """Every stored record matching the filters, in file (time) order.

        Unparseable lines are skipped — an append-only log must survive a
        torn write without poisoning every future comparison.
        """
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            if bench is not None and record.get("bench") != bench:
                continue
            if config_hash is not None and \
                    record.get("config_hash") != config_hash:
                continue
            if mode is not None and record.get("mode") != mode:
                continue
            out.append(record)
        return out

    def benches(self) -> list[tuple[str, str, str]]:
        """Distinct (bench, mode, config_hash) series present, sorted."""
        seen = {
            (r.get("bench", "?"), r.get("mode", "?"),
             r.get("config_hash", "?"))
            for r in self.records()
        }
        return sorted(seen)

    def baseline(self, bench: str, config_hash: str,
                 env_fingerprint: str | None = None,
                 ) -> tuple[dict | None, bool]:
        """Latest matching record, preferring the same environment.

        Returns ``(record, env_match)``; ``(None, False)`` when the
        series has no history at all (the first-run case: record, don't
        alarm).
        """
        matching = self.records(bench=bench, config_hash=config_hash)
        if not matching:
            return None, False
        if env_fingerprint is not None:
            same_env = [r for r in matching
                        if r.get("env_fingerprint") == env_fingerprint]
            if same_env:
                return same_env[-1], True
        return matching[-1], env_fingerprint is None
