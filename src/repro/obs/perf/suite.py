"""Shared driver behind the ``scripts/bench_*.py`` entry points.

Each script names one *headline* bench (a ratio with an absolute budget
— ``sim.speedup``, ``sched.speedup``, ``obs.overhead``), and this module
does the rest: run the suite through the unified harness, write the
``repro-bench-v1`` document (the BENCH_*.json shape, one schema for all
three), optionally append every result to the benchmark history, enforce
the budgets, and print the human summary.

The v1 document deprecates the three ad-hoc shapes the scripts used to
write; it is simply::

    {"schema": "repro-bench-v1", "suite": ..., "mode": ...,
     "headline": {"bench", "median", "unit", "budget", "direction"},
     "benches": {name: BenchResult.as_record(), ...},
     "description": ..., "command": ..., "date": ...}
"""

from __future__ import annotations

import json
import sys
from datetime import date
from pathlib import Path

from repro.obs.perf.harness import (
    BenchError,
    check_budget,
    get_spec,
    run_suite,
)
from repro.obs.perf.history import History

SCHEMA = "repro-bench-v1"


def run_suite_script(argv: list[str], *, suite: str, headline: str,
                     description: str, default_out: Path,
                     extras: tuple[str, ...] = ()) -> int:
    """The whole life of one bench script; returns its exit code.

    Args: ``[out.json] [--quick] [--samples N | --repeat N]
    [--history PATH]``.  ``extras`` names additional specs to run and
    record beside the headline (e.g. an ungated throughput series).
    Exit codes: 0 ok, 1 under budget, 2 the benchmark itself failed
    (divergent artifacts, bad usage).
    """
    argv = list(argv[1:])
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    samples = 1 if quick else 2
    for flag in ("--samples", "--repeat"):
        if flag in argv:
            at = argv.index(flag)
            samples = int(argv[at + 1])
            del argv[at:at + 2]
    history_path = None
    if "--history" in argv:
        at = argv.index("--history")
        history_path = Path(argv[at + 1])
        del argv[at:at + 2]
    out_path = Path(argv[0]) if argv else default_out
    mode = "quick" if quick else "full"

    try:
        results = run_suite([headline, *extras], mode, samples,
                            progress=lambda line: print(f"  {line}"))
    except BenchError as exc:
        print(f"BENCH FAILED: {exc}", file=sys.stderr)
        return 2

    head = results[headline]
    budget = get_spec(headline).budgets.get(mode)
    doc = {
        "schema": SCHEMA,
        "suite": suite,
        "description": description,
        "command": (f"PYTHONPATH=src python scripts/bench_{suite}.py"
                    + (" --quick" if quick else "")),
        "mode": mode,
        "headline": {
            "bench": headline,
            "median": round(head.median, 6),
            "unit": head.unit,
            "direction": head.direction,
            "budget": budget,
        },
        "benches": {name: result.as_record()
                    for name, result in results.items()},
        "date": date.today().isoformat(),
    }
    out_path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")

    for name, result in results.items():
        if name == headline:
            continue
        print(f"{name}: median {result.median:.3f}{result.unit} "
              f"(mad {result.mad:.3f}, {len(result.samples)} sample(s))")
    better = "<=" if head.direction == "lower" else ">="
    print(f"{headline}: {head.median:.2f}{head.unit}"
          + (f" (budget {better} {budget:g}{head.unit})"
             if budget is not None else "")
          + ", artifacts verified identical")
    print(f"wrote {out_path}")

    if history_path is not None:
        history = History(history_path)
        for result in results.values():
            history.append(result)
        print(f"appended {len(results)} record(s) to {history_path}")

    failures = [msg for r in results.values() if (msg := check_budget(r))]
    for msg in failures:
        print(f"UNDER BUDGET: {msg}", file=sys.stderr)
    return 1 if failures else 0
