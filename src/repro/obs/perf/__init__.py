"""Continuous performance observability: one harness, one schema.

Every performance number this repo protects — the fast-engine speedup
(BENCH_sim.json), the memoized scheduler phase (BENCH_sched.json), the
tracing overhead (BENCH_obs.json) — used to be measured by a bespoke
script with its own JSON shape and no memory of previous runs.  This
package unifies them:

* :mod:`~repro.obs.perf.harness` — a :class:`BenchSpec` registry and one
  result schema (:class:`BenchResult`: repeated samples, median + MAD,
  per-phase sample series, environment fingerprint, git SHA, config
  hash);
* :mod:`~repro.obs.perf.benches` — the built-in specs the three
  ``scripts/bench_*.py`` entry points are thin wrappers over;
* :mod:`~repro.obs.perf.history` — an append-only JSONL time series
  keyed by (bench name, config hash), seeded at ``BENCH_history.jsonl``;
* :mod:`~repro.obs.perf.regress` — a noise-aware regression detector
  (median + MAD thresholds, never a single noisy sample) with per-phase
  blame, plus a drift detector over the stored trajectory;
* :mod:`~repro.obs.perf.profile` — a span-accumulating profiler that
  folds pass spans, scheduler-phase seconds and simulator lifecycle
  events into a per-phase attribution report and a collapsed-stack
  (flamegraph-compatible) export.

The CLI front end is ``python -m repro.obs perf record|compare|trend``.
"""

from repro.obs.perf.harness import (
    BenchError,
    BenchResult,
    BenchSpec,
    RatioSpec,
    Sample,
    config_hash,
    env_fingerprint,
    fingerprint_key,
    mad,
    register,
    run_bench,
    run_suite,
)
from repro.obs.perf.history import History
from repro.obs.perf.profile import PhaseProfile
from repro.obs.perf.regress import Verdict, compare_result, trend

__all__ = [
    "BenchError",
    "BenchResult",
    "BenchSpec",
    "History",
    "PhaseProfile",
    "RatioSpec",
    "Sample",
    "Verdict",
    "compare_result",
    "config_hash",
    "env_fingerprint",
    "fingerprint_key",
    "mad",
    "register",
    "run_bench",
    "run_suite",
    "trend",
]
