"""A small labeled-metrics registry (counters, gauges, histograms).

Instruments produce *samples*: a value per distinct label set.  The whole
registry snapshots to a plain JSON-able dict, and snapshots merge —
counters and histograms add, gauges last-write-wins — so pool workers can
record independently and the parent folds their observations into one
per-cell record (:class:`repro.runner.metrics.CellMetrics`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: histogram bucket upper bounds (seconds-flavoured, but unit-agnostic)
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
                   float("inf"))

#: raw observations retained per label set for exact quantiles; past this
#: the cell falls back to bucket interpolation (and drops the raw list)
VALUE_CAP = 512


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class _Instrument:
    name: str
    help: str = ""
    kind: str = ""
    _data: dict = field(default_factory=dict)

    def samples(self) -> list[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._data.items())
        ]


class Counter(_Instrument):
    """Monotonically increasing value per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help, kind="counter")

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        self._data[key] = self._data.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._data.get(_label_key(labels), 0)


class Gauge(_Instrument):
    """Point-in-time value per label set."""

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help, kind="gauge")

    def set(self, value: float, **labels) -> None:
        self._data[_label_key(labels)] = value

    def value(self, **labels) -> float:
        return self._data.get(_label_key(labels), 0)


class Histogram(_Instrument):
    """Cumulative-bucket histogram per label set.

    Quantiles come in two precisions: while a label set has seen at most
    :data:`VALUE_CAP` observations the raw values are retained and
    quantiles are **exact** (nearest-rank on the sorted values); past the
    cap the raw list is dropped and quantiles fall back to linear
    interpolation inside the cumulative buckets (the Prometheus
    estimate — the open-ended last bucket clamps to its lower bound).
    """

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, kind="histogram")
        self.buckets = tuple(sorted(buckets))
        if self.buckets[-1] != float("inf"):
            self.buckets = self.buckets + (float("inf"),)

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        cell = self._data.get(key)
        if cell is None:
            cell = self._data[key] = {
                "count": 0, "sum": 0.0, "buckets": [0] * len(self.buckets),
                "values": [],
            }
        cell["count"] += 1
        cell["sum"] += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                cell["buckets"][i] += 1
        values = cell.get("values")
        if values is not None:
            if cell["count"] <= VALUE_CAP:
                values.append(value)
            else:
                cell["values"] = None  # clipped: bucket estimates only

    def count(self, **labels) -> int:
        cell = self._data.get(_label_key(labels))
        return cell["count"] if cell else 0

    def sum(self, **labels) -> float:
        cell = self._data.get(_label_key(labels))
        return cell["sum"] if cell else 0.0

    def quantile(self, q: float, **labels) -> float | None:
        """The q-quantile (0 <= q <= 1) of one label set, or ``None`` if
        it has no observations.  Exact while the raw values are retained,
        bucket-interpolated after (see class docstring)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        cell = self._data.get(_label_key(labels))
        if not cell or not cell["count"]:
            return None
        values = cell.get("values")
        if values:
            ordered = sorted(values)
            # nearest-rank: the smallest value with rank >= q * count
            rank = max(int(math.ceil(q * len(ordered))), 1)
            return ordered[rank - 1]
        return self._bucket_quantile(cell, q)

    def quantiles(self, qs: tuple = (0.5, 0.95, 0.99),
                  **labels) -> dict[float, float] | None:
        """Several quantiles at once; ``None`` with no observations."""
        if self.count(**labels) == 0:
            return None
        return {q: self.quantile(q, **labels) for q in qs}

    def _bucket_quantile(self, cell: dict, q: float) -> float:
        target = q * cell["count"]
        cumulative = cell["buckets"]
        previous_bound = 0.0
        previous_count = 0
        for bound, count in zip(self.buckets, cumulative):
            if count >= target:
                if bound == float("inf"):
                    # open-ended: clamp to the last finite edge
                    return previous_bound
                in_bucket = count - previous_count
                if in_bucket <= 0:
                    return bound
                fraction = (target - previous_count) / in_bucket
                return previous_bound + fraction * (bound - previous_bound)
            previous_bound, previous_count = bound, count
        return previous_bound

    def samples(self) -> list[dict]:
        out = []
        for key, cell in sorted(self._data.items()):
            value = {"count": cell["count"], "sum": cell["sum"],
                     "buckets": list(cell["buckets"])}
            if cell.get("values"):
                value["values"] = list(cell["values"])
            out.append({"labels": dict(key), "value": value})
        return out


class MetricsRegistry:
    """Named instruments; re-registering a name returns the existing one."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get(self, name: str, kind: str, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}")
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, "histogram",
                         lambda: Histogram(name, help, buckets))

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # -- serialization -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able {name: {kind, help, samples}} of every instrument."""
        return {
            name: {
                "kind": instrument.kind,
                "help": instrument.help,
                "samples": instrument.samples(),
            }
            for name, instrument in sorted(self._instruments.items())
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot in: counters/histograms add, gauges overwrite."""
        for name, payload in snapshot.items():
            kind = payload.get("kind", "counter")
            if kind == "counter":
                counter = self.counter(name, payload.get("help", ""))
                for sample in payload.get("samples", ()):
                    counter.inc(sample["value"], **sample["labels"])
            elif kind == "gauge":
                gauge = self.gauge(name, payload.get("help", ""))
                for sample in payload.get("samples", ()):
                    gauge.set(sample["value"], **sample["labels"])
            elif kind == "histogram":
                hist = self.histogram(name, payload.get("help", ""))
                for sample in payload.get("samples", ()):
                    value = sample["value"]
                    key = _label_key(sample["labels"])
                    cell = hist._data.setdefault(
                        key, {"count": 0, "sum": 0.0,
                              "buckets": [0] * len(hist.buckets),
                              "values": []})
                    count_before = cell["count"]
                    cell["count"] += value["count"]
                    cell["sum"] += value["sum"]
                    for i, n in enumerate(value["buckets"][:len(hist.buckets)]):
                        cell["buckets"][i] += n
                    # exact quantiles survive a merge only while both
                    # sides kept every raw value and the union stays
                    # under the cap; otherwise bucket estimates take over
                    incoming = value.get("values")
                    have_all = (cell.get("values") is not None
                                and len(cell["values"]) == count_before
                                and incoming is not None
                                and len(incoming) == value["count"])
                    if have_all and cell["count"] <= VALUE_CAP:
                        cell["values"] = cell["values"] + list(incoming)
                    else:
                        cell["values"] = None
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
