"""``python -m repro.obs`` — inspect and validate trace artifacts.

Subcommands::

    # schema-check a Chrome trace (exit 1 on any violation)
    python -m repro.obs validate .repro_trace/trace.json

    # per-pass / per-loop summary of a trace dir or artifact
    python -m repro.obs report .repro_trace
    python -m repro.obs report .repro_trace/report.json --json

The ``report`` command accepts the runner's trace directory, its flat
``report.json``, or the Perfetto ``trace.json`` (pass totals are then
re-derived from the span events).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import (
    TRACE_FILENAME,
    REPORT_FILENAME,
    render_report,
    report_from_chrome_trace,
    validate_chrome_trace,
)


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def _resolve_report(path: Path) -> dict:
    if path.is_dir():
        report = path / REPORT_FILENAME
        if report.exists():
            return _load(report)
        trace = path / TRACE_FILENAME
        if trace.exists():
            return report_from_chrome_trace(_load(trace))
        raise FileNotFoundError(
            f"{path}: neither {REPORT_FILENAME} nor {TRACE_FILENAME} found")
    doc = _load(path)
    if "traceEvents" in doc:
        return report_from_chrome_trace(doc)
    return doc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and validate repro trace artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser(
        "validate", help="Chrome trace-event schema check (exit 1 on error)")
    validate.add_argument("path", type=Path,
                          help="trace JSON file, or a trace directory")

    report = sub.add_parser(
        "report", help="per-pass / per-loop summary of a trace")
    report.add_argument("path", type=Path,
                        help="trace directory, report.json or trace.json")
    report.add_argument("--json", action="store_true",
                        help="emit the flat report as JSON instead of tables")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "validate":
        path = args.path
        if path.is_dir():
            path = path / TRACE_FILENAME
        try:
            doc = _load(path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        errors = validate_chrome_trace(doc)
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        if errors:
            return 1
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        print(f"{path}: valid Chrome trace ({len(events)} events)")
        return 0

    assert args.command == "report"
    try:
        report = _resolve_report(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
