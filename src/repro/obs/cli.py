"""``python -m repro.obs`` — inspect and validate trace artifacts.

Subcommands::

    # schema-check a Chrome trace (exit 1 on any violation)
    python -m repro.obs validate .repro_trace/trace.json

    # per-pass / per-loop summary of a trace dir or artifact
    python -m repro.obs report .repro_trace
    python -m repro.obs report .repro_trace/report.json --json

    # span-level profiling: slowest spans, flamegraph export
    python -m repro.obs report .repro_trace --top 10
    python -m repro.obs report .repro_trace --flame out.folded

    # benchmark observability (see repro.obs.perf)
    python -m repro.obs perf record|compare|trend|list

The ``report`` command accepts the runner's trace directory, its flat
``report.json``, or the Perfetto ``trace.json`` (pass totals are then
re-derived from the span events).  ``--top``/``--flame`` need span-level
data, so they require the trace directory or ``trace.json`` itself.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import (
    TRACE_FILENAME,
    REPORT_FILENAME,
    render_report,
    report_from_chrome_trace,
    validate_chrome_trace,
)


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def _resolve_report(path: Path) -> dict:
    if path.is_dir():
        report = path / REPORT_FILENAME
        if report.exists():
            return _load(report)
        trace = path / TRACE_FILENAME
        if trace.exists():
            return report_from_chrome_trace(_load(trace))
        raise FileNotFoundError(
            f"{path}: neither {REPORT_FILENAME} nor {TRACE_FILENAME} found")
    doc = _load(path)
    if "traceEvents" in doc:
        return report_from_chrome_trace(doc)
    return doc


def _resolve_trace_doc(path: Path) -> dict:
    """A Chrome trace document (span-level data for --top/--flame)."""
    if path.is_dir():
        trace = path / TRACE_FILENAME
        if trace.exists():
            return _load(trace)
        raise FileNotFoundError(
            f"{path}: no {TRACE_FILENAME} (span-level output needs the "
            "trace itself, not the flat report)")
    doc = _load(path)
    if "traceEvents" not in doc:
        raise ValueError(
            f"{path}: not a Chrome trace; --top/--flame need "
            f"{TRACE_FILENAME} or its directory")
    return doc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and validate repro trace artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser(
        "validate", help="Chrome trace-event schema check (exit 1 on error)")
    validate.add_argument("path", type=Path,
                          help="trace JSON file, or a trace directory")

    report = sub.add_parser(
        "report", help="per-pass / per-loop summary of a trace")
    report.add_argument("path", type=Path,
                        help="trace directory, report.json or trace.json")
    report.add_argument("--json", action="store_true",
                        help="emit the flat report as JSON instead of tables")
    report.add_argument("--top", type=int, default=None, metavar="N",
                        help="also list the N slowest individual spans")
    report.add_argument("--flame", type=Path, default=None, metavar="OUT",
                        help="write collapsed stacks (flamegraph.pl / "
                             "speedscope format); '-' for stdout")

    from repro.obs.perf.cli import add_perf_parser

    add_perf_parser(sub)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "validate":
        path = args.path
        if path.is_dir():
            path = path / TRACE_FILENAME
        try:
            doc = _load(path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        errors = validate_chrome_trace(doc)
        for error in errors:
            print(f"invalid: {error}", file=sys.stderr)
        if errors:
            return 1
        events = doc["traceEvents"] if isinstance(doc, dict) else doc
        print(f"{path}: valid Chrome trace ({len(events)} events)")
        return 0

    if args.command == "perf":
        from repro.obs.perf.cli import main_perf

        return main_perf(args)

    assert args.command == "report"
    try:
        report = _resolve_report(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))

    if args.top is not None or args.flame is not None:
        from repro.obs.perf.profile import PhaseProfile
        from repro.runner.summary import format_table

        try:
            profile = PhaseProfile.from_chrome_trace(
                _resolve_trace_doc(args.path))
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.top is not None:
            rows = [
                [";".join(span.path[:-1]) or "-", span.name,
                 span.wall_us / 1e6, span.self_us / 1e6]
                for span in profile.top_spans(args.top)
            ]
            print()
            print(format_table(
                ["under", "span", "wall s", "self s"], rows,
                f"top {args.top} slowest spans",
                align=["l", "l", "r", "r"]))
        if args.flame is not None:
            lines = profile.collapsed_lines()
            if str(args.flame) == "-":
                for line in lines:
                    print(line)
            else:
                args.flame.parent.mkdir(parents=True, exist_ok=True)
                args.flame.write_text("\n".join(lines) + "\n")
                print(f"\nflame: {args.flame} ({len(lines)} stacks)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
