"""Trace exporters: Chrome trace-event (Perfetto-loadable) JSON and a
flat per-pass / per-loop report.

The unit of export is a *cell trace*: one dict per executed runner cell::

    {"name": ..., "pipeline": ..., "capacity": ...,
     "compile": <tracer payload> | None,     # base compile spans
     "run": <tracer payload> | None,         # retarget + simulate spans
     "replayed": bool}                       # served from a cached trace

where a *tracer payload* is :meth:`repro.obs.trace.Tracer.to_payload`
output.  In the Chrome trace each cell becomes one ``pid`` with three
threads: compile spans (wall µs), run spans (wall µs) and the simulator's
loop-buffer lifecycle events, whose timestamps are **machine cycles**, not
wall time — deterministic, so a trace replayed from the cache is
byte-stable modulo the recorded compile times.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.runner.summary import format_table

#: artifact names the runner writes into its ``--trace`` directory
TRACE_FILENAME = "trace.json"
REPORT_FILENAME = "report.json"

#: tid layout inside each cell's pid
TID_COMPILE = 1
TID_RUN = 2
TID_SIM = 3

_THREAD_NAMES = {
    TID_COMPILE: "compile (wall us)",
    TID_RUN: "run (wall us)",
    TID_SIM: "sim (cycles)",
}


def cell_label(cell: dict) -> str:
    capacity = cell.get("capacity")
    return (f"{cell.get('name')}/{cell.get('pipeline')}"
            f"@{capacity if capacity is not None else 'nobuf'}")


def _meta(name: str, pid: int, tid: int, value: str) -> dict:
    return {"ph": "M", "name": name, "pid": pid, "tid": tid,
            "args": {"name": value}}


def _span_events(payload: dict, pid: int, tid: int) -> list[dict]:
    events = []
    for span in payload.get("spans", ()):
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": span.get("cat", "pass"),
            "ts": span["ts"],
            "dur": max(span.get("dur", 0.0), 0.0),
            "pid": pid,
            "tid": tid,
            "args": span.get("args", {}),
        })
    return events


def _instant_events(payload: dict, pid: int, tid_wall: int,
                    tid_cycles: int) -> list[dict]:
    events = []
    for instant in payload.get("events", ()):
        cycles = instant.get("clock") == "cycles"
        events.append({
            "ph": "i",
            "s": "t",
            "name": instant["name"],
            "cat": instant.get("cat", "event"),
            "ts": instant["ts"],
            "pid": pid,
            "tid": tid_cycles if cycles else tid_wall,
            "args": instant.get("args", {}),
        })
    return events


def to_chrome_trace(cells: list[dict]) -> dict:
    """Merge cell traces into one Chrome trace-event document."""
    events: list[dict] = []
    for pid, cell in enumerate(cells, start=1):
        events.append(_meta("process_name", pid, 0, cell_label(cell)))
        for tid, label in _THREAD_NAMES.items():
            events.append(_meta("thread_name", pid, tid, label))
        compile_payload = cell.get("compile")
        if compile_payload:
            events.extend(_span_events(compile_payload, pid, TID_COMPILE))
            events.extend(_instant_events(compile_payload, pid,
                                          TID_COMPILE, TID_SIM))
        run_payload = cell.get("run")
        if run_payload:
            events.extend(_span_events(run_payload, pid, TID_RUN))
            events.extend(_instant_events(run_payload, pid, TID_RUN, TID_SIM))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "cells": [cell_label(cell) for cell in cells],
        },
    }


def validate_chrome_trace(doc) -> list[str]:
    """Chrome trace-event schema check; returns a list of violations.

    Enforced: the document (or its ``traceEvents``) is a list; every event
    carries ``ph``; every non-metadata event carries a numeric ``ts`` plus
    ``pid`` and ``tid``; duration (``B``/``E``) events balance per
    ``(pid, tid)`` track.
    """
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["document has no traceEvents list"]
    elif isinstance(doc, list):
        events = doc
    else:
        return [f"expected a dict or list, got {type(doc).__name__}"]

    errors: list[str] = []
    depth: dict[tuple, int] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if not ph:
            errors.append(f"{where}: missing 'ph'")
            continue
        if ph == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        for field in ("pid", "tid"):
            if field not in event:
                errors.append(f"{where}: missing '{field}'")
        track = (event.get("pid"), event.get("tid"))
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
        elif ph == "E":
            depth[track] = depth.get(track, 0) - 1
            if depth[track] < 0:
                errors.append(f"{where}: 'E' without matching 'B' on "
                              f"track {track}")
        elif ph == "X" and not isinstance(event.get("dur"), (int, float)):
            errors.append(f"{where}: 'X' event missing numeric 'dur'")
    for track, d in sorted(depth.items()):
        if d > 0:
            errors.append(f"track {track}: {d} unclosed 'B' event(s)")
    return errors


# ---------------------------------------------------------------------------
# flat report


def _fold_passes(into: dict, payload: dict | None) -> None:
    if not payload:
        return
    for span in payload.get("spans", ()):
        if span.get("cat") != "pass":
            continue
        entry = into.setdefault(span["name"], {"count": 0, "wall_us": 0.0})
        entry["count"] += 1
        entry["wall_us"] += span.get("dur", 0.0)


def _fold_loops(into: dict, payload: dict | None) -> None:
    if not payload:
        return
    fetch = payload.get("metrics", {}).get("sim_fetch_ops", {})
    for sample in fetch.get("samples", ()):
        loop = sample["labels"].get("loop", "?")
        source = sample["labels"].get("source", "?")
        entry = into.setdefault(loop, {"buffer": 0, "memory": 0})
        if source in entry:
            entry[source] += sample["value"]
    lifecycle = payload.get("metrics", {}).get("sim_buffer_events", {})
    for sample in lifecycle.get("samples", ()):
        loop = sample["labels"].get("loop", "?")
        event = sample["labels"].get("event", "?")
        entry = into.setdefault(loop, {"buffer": 0, "memory": 0})
        entry[event] = entry.get(event, 0) + sample["value"]


def flat_report(cells: list[dict]) -> dict:
    """Aggregate cell traces into a flat JSON report (passes + loops)."""
    passes: dict[str, dict] = {}
    loops: dict[str, dict] = {}
    per_cell = []
    for cell in cells:
        cell_passes: dict[str, dict] = {}
        cell_loops: dict[str, dict] = {}
        for phase in ("compile", "run"):
            _fold_passes(cell_passes, cell.get(phase))
            _fold_passes(passes, cell.get(phase))
            _fold_loops(cell_loops, cell.get(phase))
            _fold_loops(loops, cell.get(phase))
        per_cell.append({
            "cell": cell_label(cell),
            "replayed": bool(cell.get("replayed")),
            "passes": cell_passes,
            "loops": cell_loops,
        })
    for table in (passes, loops):
        for entry in table.values():
            if "wall_us" in entry:
                entry["wall_us"] = round(entry["wall_us"], 3)
    return {"cells": per_cell, "passes": passes, "loops": loops}


def report_from_chrome_trace(doc: dict) -> dict:
    """Derive a pass-totals report from an exported Chrome trace."""
    passes: dict[str, dict] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "X" and event.get("cat") == "pass":
            entry = passes.setdefault(event["name"],
                                      {"count": 0, "wall_us": 0.0})
            entry["count"] += 1
            entry["wall_us"] += event.get("dur", 0.0)
    for entry in passes.values():
        entry["wall_us"] = round(entry["wall_us"], 3)
    return {"cells": [], "passes": passes, "loops": {}}


def render_report(report: dict) -> str:
    """Human table form of a flat report."""
    parts = []
    passes = report.get("passes", {})
    if passes:
        rows = [
            [name, entry["count"], entry["wall_us"] / 1e6]
            for name, entry in sorted(
                passes.items(), key=lambda kv: -kv[1]["wall_us"])
        ]
        parts.append(format_table(
            ["pass", "spans", "wall s"], rows, "compile passes",
            align=["l", "r", "r"]))
    loops = report.get("loops", {})
    if loops:
        rows = []
        for loop, entry in sorted(loops.items()):
            buffered = entry.get("buffer", 0)
            memory = entry.get("memory", 0)
            total = buffered + memory
            fraction = buffered / total if total else 0.0
            rows.append([loop, buffered, memory, f"{fraction:.1%}",
                         entry.get("record", 0), entry.get("hit", 0),
                         entry.get("evict", 0)])
        parts.append(format_table(
            ["loop", "buf ops", "mem ops", "buf%", "rec", "hit", "evict"],
            rows, "loop-buffer activity",
            align=["l", "r", "r", "r", "r", "r", "r"]))
    if not parts:
        parts.append("(empty trace: no pass spans or loop counters)")
    return "\n\n".join(parts)


def write_json(path: str | Path, doc: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
