"""Opcode definitions and static metadata for the repro IR.

Each opcode carries the metadata the rest of the compiler needs:

* which functional-unit class executes it (:data:`UNIT`);
* its result latency in cycles (:data:`LATENCY`, Section 7 of the paper:
  arithmetic 1, multiplies 2, divides 8, loads 3, floating point 2);
* structural properties (branch? memory? has side effects? speculable?).

The instruction set is deliberately DSP-flavoured: it includes the
saturating arithmetic, clip, abs and min/max operations that the paper
notes are provided through "intrinsic emulation support" in the IMPACT
environment, since MediaBench-style codecs lean on them heavily.
"""

from __future__ import annotations

from enum import Enum


class Unit(str, Enum):
    """Functional-unit classes of the modeled 8-wide VLIW (Figure 6)."""

    IALU = "ialu"
    IMUL = "imul"      # integer multiply / divide (shares slots with FPU)
    FPU = "fpu"
    MEM = "mem"
    BRANCH = "branch"
    PRED = "pred"      # predicate-generating unit


class Opcode(str, Enum):
    # -- integer arithmetic (IALU, latency 1) --
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"        # logical shift right
    SAR = "sar"        # arithmetic shift right
    NEG = "neg"
    NOT = "not"
    MOV = "mov"
    MIN = "min"
    MAX = "max"
    ABS = "abs"
    SADD = "sadd"      # saturating add (signed 16-bit result range)
    SSUB = "ssub"      # saturating subtract (signed 16-bit result range)
    SAT = "sat"        # saturate src0 to signed src1-bit range
    CLIP = "clip"      # clamp src0 into [src1, src2]
    SELECT = "select"  # dest = src1 if src0 != 0 else src2 (cond move pair)
    CMP = "cmp"        # integer compare writing 0/1; attrs["cmp"] holds test

    # -- integer multiply/divide (IMUL) --
    MUL = "mul"        # latency 2
    MULH = "mulh"      # high 32 bits of 64-bit signed product, latency 2
    DIV = "div"        # latency 8
    REM = "rem"        # latency 8

    # -- floating point (FPU, latency 2) --
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FCMP = "fcmp"      # writes int 0/1; attrs["cmp"]
    ITOF = "itof"
    FTOI = "ftoi"
    FMOV = "fmov"

    # -- memory (MEM) --
    LD = "ld"          # dest = mem[src0 + src1], latency 3
    ST = "st"          # mem[src0 + src1] = src2, latency 1

    # -- control (BRANCH) --
    JUMP = "jump"              # unconditional; attrs["target"]
    BR = "br"                  # branch if cmp(src0, src1); attrs["cmp","target"]
    BR_CLOOP = "br_cloop"      # counted loop-back; attrs["target","lc"]
    BR_WLOOP = "br_wloop"      # while loop-back; attrs["cmp","target"]
    CLOOP_SET = "cloop_set"    # load hardware loop counter attrs["lc"] = src0
    CALL = "call"              # attrs["callee"]; srcs = args, dests = rets
    RET = "ret"                # optional src0 = return value

    # -- loop-buffer management (BRANCH unit, Table 3) --
    REC_CLOOP = "rec_cloop"    # attrs["buf_addr","num","lc"]; src0 = count
    REC_WLOOP = "rec_wloop"    # attrs["buf_addr","num"]
    EXEC_CLOOP = "exec_cloop"  # attrs["buf_addr","num","lc"]; src0 = count
    EXEC_WLOOP = "exec_wloop"  # attrs["buf_addr","num"]

    # -- predication (PRED) --
    PRED_DEF = "pred_def"      # attrs["cmp","ptypes"]; dests = predicate regs
    PRED_SET = "pred_set"      # unconditionally set predicate dest to imm src0

    NOP = "nop"


#: Comparison test names usable in attrs["cmp"].
CMP_TESTS = ("eq", "ne", "lt", "le", "gt", "ge", "ltu", "geu")

#: Predicate-define destination types (Table 2 of the paper).
PTYPES = ("ut", "uf", "ot", "of", "at", "af", "ct", "cf")

_IALU_OPS = {
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
    Opcode.SHL, Opcode.SHR, Opcode.SAR, Opcode.NEG, Opcode.NOT,
    Opcode.MOV, Opcode.MIN, Opcode.MAX, Opcode.ABS, Opcode.SADD,
    Opcode.SSUB, Opcode.SAT, Opcode.CLIP, Opcode.SELECT, Opcode.CMP,
}
_IMUL_OPS = {Opcode.MUL, Opcode.MULH, Opcode.DIV, Opcode.REM}
_FPU_OPS = {
    Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV,
    Opcode.FCMP, Opcode.ITOF, Opcode.FTOI, Opcode.FMOV,
}
_MEM_OPS = {Opcode.LD, Opcode.ST}
_BRANCH_OPS = {
    Opcode.JUMP, Opcode.BR, Opcode.BR_CLOOP, Opcode.BR_WLOOP,
    Opcode.CLOOP_SET, Opcode.CALL, Opcode.RET,
    Opcode.REC_CLOOP, Opcode.REC_WLOOP, Opcode.EXEC_CLOOP, Opcode.EXEC_WLOOP,
}
_PRED_OPS = {Opcode.PRED_DEF, Opcode.PRED_SET}

UNIT: dict[Opcode, Unit] = {}
for _op in _IALU_OPS:
    UNIT[_op] = Unit.IALU
for _op in _IMUL_OPS:
    UNIT[_op] = Unit.IMUL
for _op in _FPU_OPS:
    UNIT[_op] = Unit.FPU
for _op in _MEM_OPS:
    UNIT[_op] = Unit.MEM
for _op in _BRANCH_OPS:
    UNIT[_op] = Unit.BRANCH
for _op in _PRED_OPS:
    UNIT[_op] = Unit.PRED
UNIT[Opcode.NOP] = Unit.IALU

LATENCY: dict[Opcode, int] = {op: 1 for op in Opcode}
LATENCY.update({op: 2 for op in (Opcode.MUL, Opcode.MULH)})
LATENCY.update({op: 8 for op in (Opcode.DIV, Opcode.REM)})
LATENCY.update({op: 2 for op in _FPU_OPS})
LATENCY[Opcode.LD] = 3

#: Operations that transfer control (end of a path through a block).
BRANCHES = {
    Opcode.JUMP, Opcode.BR, Opcode.BR_CLOOP, Opcode.BR_WLOOP, Opcode.RET,
}

#: Conditional branches: may fall through as well as take their target.
CONDITIONAL_BRANCHES = {Opcode.BR, Opcode.BR_CLOOP, Opcode.BR_WLOOP}

#: Operations that may not be speculated (moved above a guarding branch or
#: have their guard removed by predicate promotion).  Stores and control
#: transfers are never speculable; everything else has a speculative form in
#: the modeled architecture (Section 7: "general control speculation is
#: supported ... except for stores").
NON_SPECULABLE = {Opcode.ST} | _BRANCH_OPS | {Opcode.PRED_DEF, Opcode.PRED_SET}

#: Operations with side effects beyond their register destinations.
HAS_SIDE_EFFECTS = {Opcode.ST, Opcode.CALL} | BRANCHES | {
    Opcode.CLOOP_SET, Opcode.REC_CLOOP, Opcode.REC_WLOOP,
    Opcode.EXEC_CLOOP, Opcode.EXEC_WLOOP,
}

#: Potentially trapping operations (need a speculative form when promoted).
POTENTIALLY_EXCEPTING = {Opcode.LD, Opcode.DIV, Opcode.REM, Opcode.FDIV}


def unit_of(op: Opcode) -> Unit:
    """The functional-unit class that executes ``op``."""
    return UNIT[op]


def latency_of(op: Opcode) -> int:
    """Result latency of ``op`` in cycles."""
    return LATENCY[op]


def is_branch(op: Opcode) -> bool:
    return op in BRANCHES


def is_conditional_branch(op: Opcode) -> bool:
    return op in CONDITIONAL_BRANCHES
