"""Core intermediate representation for the repro compiler.

The IR follows the structure of IMPACT's Lcode as the paper describes it:
register-based operations with optional guard predicates, organized into
labeled blocks whose layout order defines fallthrough, grouped into
functions and modules.  Hyperblocks (single-entry predicated regions with
side exits) are ordinary blocks whose :attr:`~repro.ir.block.BasicBlock.hyperblock`
flag is set.
"""

from .block import BasicBlock
from .builder import IRBuilder
from .function import Function
from .module import GlobalData, Module
from .opcodes import (
    CMP_TESTS,
    PTYPES,
    Opcode,
    Unit,
    is_branch,
    is_conditional_branch,
    latency_of,
    unit_of,
)
from .operation import Operation
from .printer import format_function, format_module
from .registers import (
    FLOAT,
    INT,
    PRED,
    FImm,
    GlobalRef,
    Imm,
    Label,
    Operand,
    VReg,
    freg,
    ireg,
    preg,
)
from .verify import VerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock",
    "CMP_TESTS",
    "FImm",
    "FLOAT",
    "Function",
    "GlobalData",
    "GlobalRef",
    "INT",
    "IRBuilder",
    "Imm",
    "Label",
    "Module",
    "Opcode",
    "Operand",
    "Operation",
    "PRED",
    "PTYPES",
    "Unit",
    "VReg",
    "VerificationError",
    "format_function",
    "format_module",
    "freg",
    "ireg",
    "is_branch",
    "is_conditional_branch",
    "latency_of",
    "preg",
    "unit_of",
    "verify_function",
    "verify_module",
]
