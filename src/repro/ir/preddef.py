"""Predicate-define semantics (Table 2 of the paper).

A predicate define computes ``cond = cmp(src0, src1)`` under guard ``g`` and
updates each destination according to its *type*:

========  =====================================================
type      update rule (``-`` means "leave the register alone")
========  =====================================================
``ut``    g & cond      (always written: 0 when g is false)
``uf``    g & !cond     (always written)
``ot``    write 1 iff g & cond
``of``    write 1 iff g & !cond
``at``    write 0 iff g & !cond
``af``    write 0 iff g & cond
``ct``    write cond iff g
``cf``    write !cond iff g
========  =====================================================

The unconditional (u) types compute simple conditions; the or (o) types
accumulate compound conditions such as ``(x < 0) || (x > 3)``; the and (a)
types accumulate conjunctions; the conditional (c) types behave like a
guarded move of the condition.  If-conversion needs only the u and o types.
"""

from __future__ import annotations


def pred_update(ptype: str, guard: int, cond: int) -> int | None:
    """Table 2: the value written to a destination, or ``None`` for no write."""
    guard = 1 if guard else 0
    cond = 1 if cond else 0
    if ptype == "ut":
        return guard & cond
    if ptype == "uf":
        return guard & (cond ^ 1)
    if ptype == "ot":
        return 1 if (guard and cond) else None
    if ptype == "of":
        return 1 if (guard and not cond) else None
    if ptype == "at":
        return 0 if (guard and not cond) else None
    if ptype == "af":
        return 0 if (guard and cond) else None
    if ptype == "ct":
        return cond if guard else None
    if ptype == "cf":
        return (cond ^ 1) if guard else None
    raise ValueError(f"unknown predicate define type {ptype!r}")


def always_writes(ptype: str) -> bool:
    """True for types that write their destination on every execution."""
    return ptype in ("ut", "uf")


def may_write_one(ptype: str) -> bool:
    """True for types that can deposit a 1."""
    return ptype in ("ut", "uf", "ot", "of", "ct", "cf")


def may_write_zero(ptype: str) -> bool:
    """True for types that can deposit a 0."""
    return ptype in ("ut", "uf", "at", "af", "ct", "cf")
