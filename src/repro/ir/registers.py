"""Operand kinds for the repro IR.

The IR is register based, in the style of IMPACT's Lcode: operations read
and write *virtual registers* and may be guarded by a *predicate register*.
Three register classes exist:

``i``
    32-bit integer registers (the general register file; bound to 64
    physical registers late in compilation).
``f``
    floating-point registers.
``p``
    single-bit predicate registers (bound to 8 physical predicates, or to
    issue-slot standing predicates under the paper's slot-based scheme).

Besides registers, operands can be immediates (:class:`Imm`), code labels
(:class:`Label`) and references to module globals (:class:`GlobalRef`).
All operand types are immutable and hashable so they can key dependence
and liveness sets.
"""

from __future__ import annotations

from dataclasses import dataclass

INT = "i"
FLOAT = "f"
PRED = "p"

_VALID_KINDS = (INT, FLOAT, PRED)


@dataclass(frozen=True, slots=True)
class VReg:
    """A virtual register: a register class and an index within it."""

    kind: str
    index: int

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"bad register kind {self.kind!r}")
        if self.index < 0:
            raise ValueError(f"bad register index {self.index}")

    @property
    def is_predicate(self) -> bool:
        return self.kind == PRED

    @property
    def is_int(self) -> bool:
        return self.kind == INT

    @property
    def is_float(self) -> bool:
        return self.kind == FLOAT

    def __repr__(self) -> str:
        return f"{self.kind}{self.index}"


@dataclass(frozen=True, slots=True)
class Imm:
    """An integer immediate operand."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class FImm:
    """A floating-point immediate operand."""

    value: float

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Label:
    """A reference to a basic-block label (branch target)."""

    name: str

    def __repr__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True, slots=True)
class GlobalRef:
    """A reference to a module global; evaluates to its base address."""

    name: str

    def __repr__(self) -> str:
        return f"${self.name}"


#: Union type of everything that can appear in an operand position.
Operand = VReg | Imm | FImm | Label | GlobalRef


def ireg(index: int) -> VReg:
    """Shorthand constructor for an integer register."""
    return VReg(INT, index)


def freg(index: int) -> VReg:
    """Shorthand constructor for a floating-point register."""
    return VReg(FLOAT, index)


def preg(index: int) -> VReg:
    """Shorthand constructor for a predicate register."""
    return VReg(PRED, index)
