"""The :class:`Operation` — a single (possibly guarded) IR instruction.

An operation is ``opcode  dests <- srcs  (guard)?  {attrs}``.  The guard is
an optional predicate register; a guarded operation is nullified when its
guard evaluates false (Section 4 of the paper).  ``attrs`` carries
non-operand information: comparison tests, branch targets, predicate-define
destination types, callee names, loop-counter ids and late scheduling
annotations (slot binding, predicate-sensitivity bit).
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

from .opcodes import (
    BRANCHES,
    CMP_TESTS,
    CONDITIONAL_BRANCHES,
    HAS_SIDE_EFFECTS,
    PTYPES,
    Opcode,
    latency_of,
    unit_of,
)
from .registers import Operand, VReg

_op_ids = itertools.count()


class Operation:
    """One IR instruction.

    Attributes
    ----------
    opcode:
        The :class:`~repro.ir.opcodes.Opcode`.
    dests:
        Destination registers (predicate defines may have two).
    srcs:
        Source operands (registers, immediates, globals).
    guard:
        Optional guard predicate register; ``None`` for always-execute.
    attrs:
        Opcode-specific attributes, e.g. ``cmp``, ``target``, ``ptypes``,
        ``callee``, ``lc``, ``buf_addr``, ``num``.  The slot-predication
        allocator adds ``slot`` and ``psens``; hyperblock formation may add
        ``speculative``.
    """

    __slots__ = ("opcode", "dests", "srcs", "guard", "attrs", "uid")

    def __init__(
        self,
        opcode: Opcode,
        dests: list[VReg] | None = None,
        srcs: list[Operand] | None = None,
        guard: VReg | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.opcode = opcode
        self.dests: list[VReg] = list(dests or [])
        self.srcs: list[Operand] = list(srcs or [])
        self.guard = guard
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.uid = next(_op_ids)
        self._check()

    # -- construction helpers ------------------------------------------------

    def _check(self) -> None:
        if self.guard is not None and not self.guard.is_predicate:
            raise ValueError(f"guard {self.guard} is not a predicate register")
        for dst in self.dests:
            if not isinstance(dst, VReg):
                raise TypeError(f"destination {dst!r} is not a register")
        if self.opcode == Opcode.PRED_DEF:
            ptypes = self.attrs.get("ptypes")
            if not ptypes or len(ptypes) != len(self.dests):
                raise ValueError("pred_def needs one ptype per destination")
            for ptype in ptypes:
                if ptype not in PTYPES:
                    raise ValueError(f"bad predicate define type {ptype!r}")
            if self.attrs.get("cmp") not in CMP_TESTS:
                raise ValueError("pred_def needs a valid attrs['cmp']")
            for dst in self.dests:
                if not dst.is_predicate:
                    raise ValueError("pred_def destinations must be predicates")
        if self.opcode in (Opcode.CMP, Opcode.BR, Opcode.BR_WLOOP, Opcode.FCMP):
            if self.attrs.get("cmp") not in CMP_TESTS:
                raise ValueError(f"{self.opcode.value} needs a valid attrs['cmp']")

    def copy(self) -> "Operation":
        """A deep-enough copy: fresh uid, fresh operand lists, copied attrs."""
        return Operation(
            self.opcode,
            list(self.dests),
            list(self.srcs),
            self.guard,
            dict(self.attrs),
        )

    # -- structural queries ----------------------------------------------------

    @property
    def is_branch(self) -> bool:
        return self.opcode in BRANCHES

    @property
    def is_conditional_branch(self) -> bool:
        return self.opcode in CONDITIONAL_BRANCHES

    @property
    def is_unconditional_jump(self) -> bool:
        return self.opcode == Opcode.JUMP

    @property
    def has_side_effects(self) -> bool:
        return self.opcode in HAS_SIDE_EFFECTS

    @property
    def target(self) -> str | None:
        """Branch target label name, if this is a branching operation."""
        return self.attrs.get("target")

    @property
    def unit(self):
        return unit_of(self.opcode)

    @property
    def latency(self) -> int:
        return latency_of(self.opcode)

    def reads(self) -> Iterator[VReg]:
        """Registers read: sources plus the guard predicate."""
        if self.guard is not None:
            yield self.guard
        for src in self.srcs:
            if isinstance(src, VReg):
                yield src

    def writes(self) -> Iterator[VReg]:
        yield from self.dests

    def replace_reads(self, mapping: dict[VReg, Operand]) -> None:
        """Substitute source registers (and the guard, registers only)."""
        self.srcs = [
            mapping.get(src, src) if isinstance(src, VReg) else src
            for src in self.srcs
        ]
        if self.guard is not None and self.guard in mapping:
            new_guard = mapping[self.guard]
            if not isinstance(new_guard, VReg) or not new_guard.is_predicate:
                raise ValueError("guard must map to a predicate register")
            self.guard = new_guard

    def replace_writes(self, mapping: dict[VReg, VReg]) -> None:
        self.dests = [mapping.get(dst, dst) for dst in self.dests]

    # -- printing ---------------------------------------------------------------

    def __repr__(self) -> str:
        parts = []
        if self.guard is not None:
            parts.append(f"({self.guard})")
        name = self.opcode.value
        if "cmp" in self.attrs:
            name += f".{self.attrs['cmp']}"
        if self.opcode == Opcode.PRED_DEF:
            dests = ", ".join(
                f"{dst}<{ptype}>"
                for dst, ptype in zip(self.dests, self.attrs["ptypes"])
            )
        else:
            dests = ", ".join(map(repr, self.dests))
        srcs = ", ".join(map(repr, self.srcs))
        parts.append(name)
        if dests:
            parts.append(dests + (" =" if srcs or not dests else " ="))
        if srcs:
            parts.append(srcs)
        if self.target is not None:
            parts.append(f"-> {self.target}")
        if "callee" in self.attrs:
            parts.append(f"[{self.attrs['callee']}]")
        return " ".join(parts)
