"""Textual dumping of IR for debugging and golden tests."""

from __future__ import annotations

from .function import Function
from .module import Module


def op_location(func: str | None, block: str | None = None,
                index: int | None = None) -> str:
    """Stable printable coordinate of an operation: ``func/block#index``.

    ``index`` is the operation's position within its block's op list.  The
    same format is used by :class:`~repro.ir.verify.VerificationError`
    messages and :mod:`repro.analysis.lint` diagnostics, so a location can
    be grepped straight back to ``format_function`` output (which prefixes
    every op with its ``#index``).
    """
    where = func if func else "<module>"
    if block is not None:
        where += f"/{block}"
        if index is not None:
            where += f"#{index}"
    return where


def format_function(func: Function, profile=None) -> str:
    """Render a function as readable text.

    If ``profile`` (a :class:`repro.analysis.profile.Profile`) is given,
    block execution weights are annotated.
    """
    lines = [f"func {func.name}({', '.join(map(repr, func.params))}):"]
    for block in func.blocks:
        weight = ""
        if profile is not None:
            count = profile.block_count(func.name, block.label)
            weight = f"    ; weight={count}"
        mark = " [hyperblock]" if block.hyperblock else ""
        lines.append(f"  {block.label}:{mark}{weight}")
        for index, op in enumerate(block.ops):
            lines.append(f"    #{index:<3d} {op!r}")
    return "\n".join(lines)


def format_module(module: Module, profile=None) -> str:
    parts = [f"module {module.name}"]
    for data in module.globals.values():
        shown = data.init[:8]
        suffix = ", ..." if len(data.init) > 8 else ""
        parts.append(f"global {data.name}[{data.size}] = {shown}{suffix}")
    for func in module.functions.values():
        parts.append(format_function(func, profile))
    return "\n\n".join(parts)
