"""Textual dumping of IR for debugging and golden tests."""

from __future__ import annotations

from .function import Function
from .module import Module


def format_function(func: Function, profile=None) -> str:
    """Render a function as readable text.

    If ``profile`` (a :class:`repro.analysis.profile.Profile`) is given,
    block execution weights are annotated.
    """
    lines = [f"func {func.name}({', '.join(map(repr, func.params))}):"]
    for block in func.blocks:
        weight = ""
        if profile is not None:
            count = profile.block_count(func.name, block.label)
            weight = f"    ; weight={count}"
        mark = " [hyperblock]" if block.hyperblock else ""
        lines.append(f"  {block.label}:{mark}{weight}")
        for op in block.ops:
            lines.append(f"    {op!r}")
    return "\n".join(lines)


def format_module(module: Module, profile=None) -> str:
    parts = [f"module {module.name}"]
    for data in module.globals.values():
        shown = data.init[:8]
        suffix = ", ..." if len(data.init) > 8 else ""
        parts.append(f"global {data.name}[{data.size}] = {shown}{suffix}")
    for func in module.functions.values():
        parts.append(format_function(func, profile))
    return "\n\n".join(parts)
