"""Basic blocks.

A block is a labeled sequence of operations.  Unlike textbook basic blocks,
*hyperblocks* produced by if-conversion may contain conditional branches
(side exits) anywhere in their body, so a block here is really an Lcode-style
"control block": control can leave at any branch operation, and falls through
to the next block in layout order unless the last operation is an
unconditional transfer.
"""

from __future__ import annotations

from typing import Iterator

from .opcodes import Opcode
from .operation import Operation


class BasicBlock:
    """A labeled straight-line sequence of operations."""

    # __weakref__ lets the fast engine's shared decode store key entries
    # weakly by block object without pinning retired overlay blocks alive.
    __slots__ = ("label", "ops", "hyperblock", "__weakref__")

    def __init__(self, label: str, ops: list[Operation] | None = None) -> None:
        self.label = label
        self.ops: list[Operation] = list(ops or [])
        #: set by if-conversion: this block was formed as a hyperblock.
        self.hyperblock = False

    def append(self, op: Operation) -> Operation:
        self.ops.append(op)
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        self.ops.insert(index, op)
        return op

    @property
    def terminator(self) -> Operation | None:
        """The final operation if it transfers control, else ``None``."""
        if self.ops and self.ops[-1].is_branch:
            return self.ops[-1]
        return None

    @property
    def falls_through(self) -> bool:
        """True when control can reach the next block in layout order."""
        term = self.terminator
        if term is None:
            return True
        if term.opcode in (Opcode.RET,):
            return False
        if term.opcode == Opcode.JUMP and term.guard is None:
            return False
        return True

    def branch_ops(self) -> Iterator[Operation]:
        """All control-transfer operations in the block, in order."""
        for op in self.ops:
            if op.is_branch:
                yield op

    def exit_targets(self) -> list[str]:
        """Labels of all explicit branch targets out of this block."""
        targets = []
        for op in self.branch_ops():
            if op.target is not None:
                targets.append(op.target)
        return targets

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label}: {len(self.ops)} ops>"
