"""Modules: the unit of compilation (functions + global data)."""

from __future__ import annotations

from dataclasses import dataclass, field

from .function import Function


@dataclass
class GlobalData:
    """A module-level word array.

    ``size`` is in 32-bit words; ``init`` (if given) provides initial word
    values, zero-padded to ``size``.  Globals are laid out by the simulator's
    loader, which assigns each a base address.
    """

    name: str
    size: int
    init: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"global {self.name!r} must have positive size")
        if len(self.init) > self.size:
            raise ValueError(f"global {self.name!r} initializer exceeds size")

    def words(self) -> list[int]:
        """Initial contents, zero-padded to ``size``."""
        return self.init + [0] * (self.size - len(self.init))


class Module:
    """A compilation unit: named functions plus global arrays."""

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalData] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func
        return func

    def add_global(self, name: str, size: int, init: list[int] | None = None) -> GlobalData:
        if name in self.globals:
            raise ValueError(f"duplicate global {name!r}")
        data = GlobalData(name, size, list(init or []))
        self.globals[name] = data
        return data

    def function(self, name: str) -> Function:
        return self.functions[name]

    def op_count(self) -> int:
        """Total static operation count across all functions."""
        return sum(func.op_count() for func in self.functions.values())

    def __repr__(self) -> str:
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals, {self.op_count()} ops>"
        )
