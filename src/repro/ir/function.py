"""Functions: ordered block layouts plus virtual-register allocation."""

from __future__ import annotations

from typing import Iterator

from .block import BasicBlock
from .opcodes import Opcode
from .operation import Operation
from .registers import FLOAT, INT, PRED, VReg


class Function:
    """A function: parameters, a layout-ordered list of blocks, counters.

    Block layout order is semantically meaningful: a block that *falls
    through* continues in the next block of :attr:`blocks`.  The first block
    is the entry.
    """

    def __init__(self, name: str, params: list[VReg] | None = None) -> None:
        self.name = name
        self.params: list[VReg] = list(params or [])
        self.blocks: list[BasicBlock] = []
        self._by_label: dict[str, BasicBlock] = {}
        self._next_reg = {INT: 0, FLOAT: 0, PRED: 0}
        self._next_label = 0
        #: size of the function's stack frame in words (locals / spills).
        self.frame_words = 0
        #: register holding the frame base address at entry (set by lowering
        #: when the function has stack locals; bound by the simulators).
        self.frame_base: VReg | None = None
        for param in self.params:
            self._note_reg(param)

    # -- registers and labels -------------------------------------------------

    def _note_reg(self, reg: VReg) -> None:
        if reg.index >= self._next_reg[reg.kind]:
            self._next_reg[reg.kind] = reg.index + 1

    def new_reg(self, kind: str = INT) -> VReg:
        """Allocate a fresh virtual register of the given class."""
        reg = VReg(kind, self._next_reg[kind])
        self._next_reg[kind] += 1
        return reg

    def new_pred(self) -> VReg:
        return self.new_reg(PRED)

    def new_label(self, hint: str = "bb") -> str:
        """Allocate a fresh, unique block label."""
        while True:
            label = f"{hint}{self._next_label}"
            self._next_label += 1
            if label not in self._by_label:
                return label

    def sync_reg_counters(self) -> None:
        """Recompute register counters after importing foreign operations
        (e.g. inlining) so :meth:`new_reg` never collides."""
        for op in self.ops():
            for reg in list(op.reads()) + list(op.writes()):
                self._note_reg(reg)

    # -- block management -------------------------------------------------------

    def add_block(self, label: str | None = None, index: int | None = None) -> BasicBlock:
        """Create a new block, appended or inserted at ``index``."""
        if label is None:
            label = self.new_label()
        if label in self._by_label:
            raise ValueError(f"duplicate block label {label!r}")
        block = BasicBlock(label)
        if index is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(index, block)
        self._by_label[label] = block
        return block

    def adopt_block(self, block: BasicBlock, index: int | None = None) -> BasicBlock:
        """Insert an externally-constructed block into the layout."""
        if block.label in self._by_label:
            raise ValueError(f"duplicate block label {block.label!r}")
        if index is None:
            self.blocks.append(block)
        else:
            self.blocks.insert(index, block)
        self._by_label[block.label] = block
        return block

    def remove_block(self, label: str) -> None:
        block = self._by_label.pop(label)
        self.blocks.remove(block)

    def block(self, label: str) -> BasicBlock:
        return self._by_label[label]

    def has_block(self, label: str) -> bool:
        return label in self._by_label

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block_index(self, label: str) -> int:
        for i, block in enumerate(self.blocks):
            if block.label == label:
                return i
        raise KeyError(label)

    # -- CFG queries (layout-aware) ----------------------------------------------

    def successors(self, block: BasicBlock) -> list[str]:
        """Labels of all possible successors of ``block``, fallthrough last.

        Branch targets are listed in operation order; the fallthrough
        successor (next block in layout) is appended when the block can fall
        through and a next block exists.
        """
        succs: list[str] = []
        for target in block.exit_targets():
            if target not in succs:
                succs.append(target)
        if block.falls_through:
            idx = self.blocks.index(block)
            if idx + 1 < len(self.blocks):
                nxt = self.blocks[idx + 1].label
                if nxt not in succs:
                    succs.append(nxt)
        return succs

    def predecessors(self) -> dict[str, list[str]]:
        """Map from block label to the labels of its predecessors."""
        preds: dict[str, list[str]] = {block.label: [] for block in self.blocks}
        for block in self.blocks:
            for succ in self.successors(block):
                if succ in preds:
                    preds[succ].append(block.label)
        return preds

    # -- iteration ----------------------------------------------------------------

    def ops(self) -> Iterator[Operation]:
        for block in self.blocks:
            yield from block.ops

    def op_count(self) -> int:
        """Static operation count (NOPs excluded)."""
        return sum(
            1 for op in self.ops() if op.opcode != Opcode.NOP
        )

    def __repr__(self) -> str:
        return f"<Function {self.name}: {len(self.blocks)} blocks, {self.op_count()} ops>"
