"""A fluent builder for constructing IR by hand (lowering, transforms, tests).

The builder tracks a current insertion block; every ``emit_*`` method
appends one operation and returns its destination register (or the
operation itself for control flow), so straight-line code reads naturally::

    b = IRBuilder(func, func.add_block("entry"))
    total = b.emit(Opcode.ADD, b.reg(), [x, Imm(1)])
    b.br("lt", total, Imm(10), "loop")
"""

from __future__ import annotations

from typing import Any

from .block import BasicBlock
from .function import Function
from .opcodes import Opcode
from .operation import Operation
from .registers import INT, Imm, Operand, VReg


class IRBuilder:
    """Appends operations to a current block of ``func``."""

    def __init__(self, func: Function, block: BasicBlock | None = None) -> None:
        self.func = func
        self.block = block

    def at(self, block: BasicBlock) -> "IRBuilder":
        """Move the insertion point to ``block``."""
        self.block = block
        return self

    def new_block(self, hint: str = "bb") -> BasicBlock:
        """Append a fresh block to the layout and move to it."""
        block = self.func.add_block(self.func.new_label(hint))
        self.block = block
        return block

    def reg(self, kind: str = INT) -> VReg:
        return self.func.new_reg(kind)

    # -- generic emission --------------------------------------------------------

    def emit_op(
        self,
        opcode: Opcode,
        dests: list[VReg] | None = None,
        srcs: list[Operand] | None = None,
        guard: VReg | None = None,
        **attrs: Any,
    ) -> Operation:
        if self.block is None:
            raise RuntimeError("builder has no current block")
        op = Operation(opcode, dests, srcs, guard, attrs)
        self.block.append(op)
        return op

    def emit(
        self,
        opcode: Opcode,
        srcs: list[Operand],
        dest: VReg | None = None,
        guard: VReg | None = None,
        **attrs: Any,
    ) -> VReg:
        """Emit a single-destination op; allocates the dest if not given."""
        if dest is None:
            dest = self.reg()
        self.emit_op(opcode, [dest], srcs, guard, **attrs)
        return dest

    # -- common shorthands ----------------------------------------------------------

    def mov(self, src: Operand, dest: VReg | None = None, guard: VReg | None = None) -> VReg:
        return self.emit(Opcode.MOV, [src], dest, guard)

    def movi(self, value: int, dest: VReg | None = None, guard: VReg | None = None) -> VReg:
        return self.emit(Opcode.MOV, [Imm(value)], dest, guard)

    def add(self, a: Operand, b: Operand, dest: VReg | None = None, guard: VReg | None = None) -> VReg:
        return self.emit(Opcode.ADD, [a, b], dest, guard)

    def sub(self, a: Operand, b: Operand, dest: VReg | None = None, guard: VReg | None = None) -> VReg:
        return self.emit(Opcode.SUB, [a, b], dest, guard)

    def mul(self, a: Operand, b: Operand, dest: VReg | None = None, guard: VReg | None = None) -> VReg:
        return self.emit(Opcode.MUL, [a, b], dest, guard)

    def cmp(self, test: str, a: Operand, b: Operand, dest: VReg | None = None,
            guard: VReg | None = None) -> VReg:
        return self.emit(Opcode.CMP, [a, b], dest, guard, cmp=test)

    def load(self, base: Operand, offset: Operand | int = 0, dest: VReg | None = None,
             guard: VReg | None = None) -> VReg:
        if isinstance(offset, int):
            offset = Imm(offset)
        return self.emit(Opcode.LD, [base, offset], dest, guard)

    def store(self, base: Operand, offset: Operand | int, value: Operand,
              guard: VReg | None = None) -> Operation:
        if isinstance(offset, int):
            offset = Imm(offset)
        return self.emit_op(Opcode.ST, [], [base, offset, value], guard)

    # -- control flow -----------------------------------------------------------------

    def jump(self, target: str, guard: VReg | None = None) -> Operation:
        return self.emit_op(Opcode.JUMP, [], [], guard, target=target)

    def br(self, test: str, a: Operand, b: Operand, target: str,
           guard: VReg | None = None) -> Operation:
        return self.emit_op(Opcode.BR, [], [a, b], guard, cmp=test, target=target)

    def ret(self, value: Operand | None = None) -> Operation:
        srcs = [] if value is None else [value]
        return self.emit_op(Opcode.RET, [], srcs)

    def call(self, callee: str, args: list[Operand], dest: VReg | None = None,
             guard: VReg | None = None) -> VReg | None:
        dests = [dest] if dest is not None else []
        self.emit_op(Opcode.CALL, dests, args, guard, callee=callee)
        return dest

    # -- predication --------------------------------------------------------------------

    def pred_def(
        self,
        cmp: str,
        a: Operand,
        b: Operand,
        dests: list[VReg],
        ptypes: list[str],
        guard: VReg | None = None,
    ) -> Operation:
        return self.emit_op(
            Opcode.PRED_DEF, dests, [a, b], guard, cmp=cmp, ptypes=list(ptypes)
        )

    def pred_set(self, dest: VReg, value: int, guard: VReg | None = None) -> Operation:
        return self.emit_op(Opcode.PRED_SET, [dest], [Imm(value)], guard)
