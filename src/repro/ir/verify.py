"""Structural verification of IR invariants.

Run after every transformation in tests; catches dangling branch targets,
malformed terminators, undefined callees, and operand-shape mistakes early,
which is what makes the aggressive transforms in :mod:`repro.looptrans` and
:mod:`repro.predication` safe to compose.
"""

from __future__ import annotations

from .function import Function
from .module import Module
from .opcodes import Opcode
from .printer import op_location
from .registers import GlobalRef, Label, VReg


class VerificationError(Exception):
    """The IR violates a structural invariant."""


_SRC_COUNTS = {
    Opcode.ADD: 2, Opcode.SUB: 2, Opcode.AND: 2, Opcode.OR: 2, Opcode.XOR: 2,
    Opcode.SHL: 2, Opcode.SHR: 2, Opcode.SAR: 2, Opcode.MIN: 2, Opcode.MAX: 2,
    Opcode.SADD: 2, Opcode.SSUB: 2, Opcode.SAT: 2, Opcode.MUL: 2,
    Opcode.MULH: 2, Opcode.DIV: 2, Opcode.REM: 2, Opcode.CMP: 2,
    Opcode.NEG: 1, Opcode.NOT: 1, Opcode.MOV: 1, Opcode.ABS: 1,
    Opcode.CLIP: 3, Opcode.SELECT: 3,
    Opcode.FADD: 2, Opcode.FSUB: 2, Opcode.FMUL: 2, Opcode.FDIV: 2,
    Opcode.FCMP: 2, Opcode.ITOF: 1, Opcode.FTOI: 1, Opcode.FMOV: 1,
    Opcode.LD: 2, Opcode.ST: 3,
    Opcode.JUMP: 0, Opcode.BR: 2, Opcode.BR_CLOOP: 0, Opcode.BR_WLOOP: 2,
    Opcode.CLOOP_SET: 1, Opcode.PRED_DEF: 2, Opcode.PRED_SET: 1,
    Opcode.NOP: 0,
}

_NEEDS_TARGET = {Opcode.JUMP, Opcode.BR, Opcode.BR_CLOOP, Opcode.BR_WLOOP}


def verify_function(func: Function, module: Module | None = None,
                    allow_unreachable: bool = False) -> None:
    """Raise :class:`VerificationError` on any structural violation.

    ``allow_unreachable`` skips the unreachable-block check; checked mode
    verifies after *every* pass, and transforms like peeling legitimately
    strand remnant blocks that a later ``simplify_cfg`` sweeps away.
    """
    if not func.blocks:
        raise VerificationError(f"{func.name}: function has no blocks")
    labels = {block.label for block in func.blocks}
    if len(labels) != len(func.blocks):
        raise VerificationError(f"{func.name}: duplicate block labels")

    for block in func.blocks:
        for index, op in enumerate(block.ops):
            where = f"{op_location(func.name, block.label, index)}: {op!r}"
            expected = _SRC_COUNTS.get(op.opcode)
            if expected is not None and len(op.srcs) != expected:
                raise VerificationError(
                    f"{where}: expected {expected} sources, got {len(op.srcs)}"
                )
            if op.opcode in _NEEDS_TARGET:
                target = op.target
                if target is None:
                    raise VerificationError(f"{where}: branch lacks a target")
                if target not in labels:
                    raise VerificationError(f"{where}: dangling target {target!r}")
            if op.opcode == Opcode.RET and len(op.srcs) > 1:
                raise VerificationError(f"{where}: ret takes at most one source")
            if op.opcode == Opcode.CALL:
                callee = op.attrs.get("callee")
                if callee is None:
                    raise VerificationError(f"{where}: call lacks a callee")
                if module is not None and callee not in module.functions:
                    raise VerificationError(f"{where}: unknown callee {callee!r}")
                if len(op.dests) > 1:
                    raise VerificationError(f"{where}: call has multiple dests")
            if op.opcode == Opcode.ST and op.dests:
                raise VerificationError(f"{where}: store must not have dests")
            if op.opcode == Opcode.LD and len(op.dests) != 1:
                raise VerificationError(f"{where}: load needs exactly one dest")
            for src in op.srcs:
                if isinstance(src, Label):
                    raise VerificationError(
                        f"{where}: labels belong in attrs['target'], not srcs"
                    )
                if isinstance(src, GlobalRef) and module is not None:
                    if src.name not in module.globals:
                        raise VerificationError(
                            f"{where}: unknown global {src.name!r}"
                        )
            if op.opcode == Opcode.PRED_SET and not op.dests[0].is_predicate:
                raise VerificationError(f"{where}: pred_set dest must be predicate")
            if op.opcode == Opcode.PRED_DEF:
                for dst in op.dests:
                    if not dst.is_predicate:
                        raise VerificationError(
                            f"{where}: pred_def dests must be predicates"
                        )
            if op.opcode not in (Opcode.PRED_DEF, Opcode.PRED_SET):
                for dst in op.dests:
                    if isinstance(dst, VReg) and dst.is_predicate:
                        raise VerificationError(
                            f"{where}: only predicate ops may write predicates"
                        )

    # Every block must be terminated or able to fall through to a real block.
    last = func.blocks[-1]
    if last.falls_through:
        raise VerificationError(
            f"{func.name}: final block {last.label!r} falls off the function"
        )

    if not allow_unreachable:
        unreachable = labels - _reachable_labels(func)
        if unreachable:
            raise VerificationError(
                f"{func.name}: blocks unreachable from entry: "
                f"{', '.join(sorted(unreachable))}"
            )


def _reachable_labels(func: Function) -> set[str]:
    seen: set[str] = set()
    stack = [func.entry.label]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        stack.extend(func.successors(func.block(label)))
    return seen


def verify_module(module: Module, allow_unreachable: bool = False) -> None:
    for func in module.functions.values():
        verify_function(func, module, allow_unreachable=allow_unreachable)
